"""NEWMA (arXiv 1805.08061): dual-forgetting-factor EWMA phase detection.

NEWMA (No-prior-knowledge Exponentially Weighted Moving Average) tracks
*two* exponentially weighted averages of the same feature stream — one
with a fast forgetting factor, one slow — and monitors the distance
between them.  On a stationary stream both converge to the same mean
and the distance is small; after a change the fast average moves first
and the distance spikes.  Unlike CUSUM-style tests it needs no
pre-change model at all (both averages are learned online), and unlike
window methods it stores no samples — just the two running vectors.

The feature map matters: comparing raw element means would collapse the
branch stream to one dimension.  Following the paper's random-features
construction we embed each profile element as a deterministic ±1 sketch
(``sketch_dim`` splitmix64-derived signs), so the EWMAs live in a space
where distinct working sets are nearly orthogonal and the L2 distance
between the averages estimates how much the recent element mixture has
drifted from the longer-term mixture.

Decision mapping: the steady-state distance depends on the stream's
working-set diversity, so — as the paper prescribes — the bar adapts:
the engine tracks EWMA moments of the distance itself and flags drift
when the distance exceeds ``mean + stat_threshold · std`` (the
windowed grid's Average analyzer uses the same adapt-to-your-own-
statistic idea).  Distance at/below the bar → the fast and slow views
agree → **phase**; above → drift → transition.  No explicit reset is
needed on exit — the forgetting factors decay the old behavior out of
both averages, which is the family's natural hysteresis (re-entry
happens once the averages reconverge and the moments re-adapt).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.decision import DecisionEngine, PhaseDecision
from repro.core.state import PhaseState

__all__ = ["NewmaEngine", "NEWMA_STAT_THRESHOLD", "element_sketch"]

#: Default decision bar, in standard deviations of the distance's own
#: running (EWMA) distribution: drift is flagged when the distance
#: exceeds ``mean + NEWMA_STAT_THRESHOLD * std``.  Scale-free — the
#: steady-state distance level depends on the stream's working-set
#: diversity, which the running moments absorb.
NEWMA_STAT_THRESHOLD = 4.0

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_SEED_ADD = 0xD1B54A32D192ED03


def element_sketch(element: int, dim: int) -> np.ndarray:
    """Deterministic ±1 sketch of one profile element.

    A splitmix64 stream seeded by the element supplies 64 sign bits per
    draw — deterministic across processes (no Python ``hash()`` salt),
    so checkpoints restore to bit-identical continuations anywhere.
    """
    out = np.empty(dim, dtype=np.float64)
    state = (element * _GOLDEN + _SEED_ADD) & _MASK64
    bits = 0
    have = 0
    for index in range(dim):
        if have == 0:
            state = (state + _GOLDEN) & _MASK64
            word = state
            word = ((word ^ (word >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            word = ((word ^ (word >> 27)) * 0x94D049BB133111EB) & _MASK64
            word ^= word >> 31
            bits = word
            have = 64
        out[index] = 1.0 if bits & 1 else -1.0
        bits >>= 1
        have -= 1
    return out


class NewmaEngine(DecisionEngine):
    """Dual-EWMA distance over hashed element sketches.

    Configuration mapping (see :class:`~repro.core.config.DetectorConfig`):
    ``cw_size`` sets the warm-up length in elements (both averages must
    see some stream before their distance means anything),
    ``skip_factor`` the elements per step, ``newma_fast``/``newma_slow``
    the two forgetting factors (fast > slow; ``newma_slow`` also drives
    the bar's moment tracking), ``sketch_dim`` the sketch
    dimensionality, and ``stat_threshold`` the bar in std units
    (default :data:`NEWMA_STAT_THRESHOLD`).  Window-policy fields are
    ignored; the whole engine state is the two ``sketch_dim``-vectors
    plus the two moment scalars.
    """

    family = "newma"

    def __init__(self, config: DetectorConfig, observer=None, metrics=None) -> None:
        super().__init__(config, observer=observer, metrics=metrics)
        self.stat_threshold = (
            config.stat_threshold
            if config.stat_threshold is not None
            else NEWMA_STAT_THRESHOLD
        )
        self._warmup_left = max(2, config.cw_size // config.skip_factor)
        dim = config.sketch_dim
        self._fast = np.zeros(dim, dtype=np.float64)
        self._slow = np.zeros(dim, dtype=np.float64)
        # EWMA moments of the distance statistic (the adaptive bar).
        self._stat_mean = 0.0
        self._stat_var = 0.0
        self._stat_seen = False
        # Sketches are pure functions of the element — cached here but
        # deliberately NOT checkpointed (recomputed on demand).
        self._sketch_cache: Dict[int, np.ndarray] = {}

    def _group_feature(self, elements: Sequence[int]) -> np.ndarray:
        cache = self._sketch_cache
        dim = self.config.sketch_dim
        if len(elements) == 1:
            element = elements[0]
            sketch = cache.get(element)
            if sketch is None:
                sketch = element_sketch(element, dim)
                cache[element] = sketch
            return sketch  # read-only below; never mutated in place
        total = np.zeros(dim, dtype=np.float64)
        for element in elements:
            sketch = cache.get(element)
            if sketch is None:
                sketch = element_sketch(element, dim)
                cache[element] = sketch
            total += sketch
        total /= len(elements)
        return total

    # -- the per-step contract -------------------------------------------------

    def step(self, elements: Sequence[int]) -> PhaseDecision:
        group_len = len(elements)
        self._consumed += group_len
        feature = self._group_feature(elements)
        fast_factor = self.config.newma_fast
        slow_factor = self.config.newma_slow
        self._fast = self._fast * (1.0 - fast_factor) + feature * fast_factor
        self._slow = self._slow * (1.0 - slow_factor) + feature * slow_factor

        if self._warmup_left > 0:
            self._warmup_left -= 1
            # Both averages still carry their zero initialization; the
            # distance is initialization artifact, not signal.
            return PhaseDecision(self.state, None)

        diff = self._fast - self._slow
        distance = float(np.sqrt(np.dot(diff, diff)))

        # Adaptive bar from the statistic's own EWMA moments — computed
        # *before* folding the current distance in, so a spike is judged
        # against the pre-spike distribution.
        if self._stat_seen:
            bar = self._stat_mean + self.stat_threshold * (self._stat_var ** 0.5)
        else:
            # First measurable distance seeds the moments; nothing to
            # compare against yet, so it trivially passes.
            bar = distance
        in_phase = distance <= bar
        alpha = self.config.newma_slow
        if self._stat_seen:
            delta = distance - self._stat_mean
            self._stat_mean += alpha * delta
            self._stat_var = (1.0 - alpha) * (self._stat_var + alpha * delta * delta)
        else:
            self._stat_mean = distance
            self._stat_var = 0.0
            self._stat_seen = True

        observer = self._observer
        if observer is not None:
            step = self._consumed
            observer.emit(
                {
                    "ev": "similarity",
                    "step": step,
                    "value": distance,
                    "cw": 0,
                    "tw": 0,
                }
            )
            observer.emit(
                {
                    "ev": "decision",
                    "step": step,
                    "state": "P" if in_phase else "T",
                    "value": distance,
                    "bar": bar,
                }
            )

        entered = False
        closed = None
        if in_phase:
            if not self.state.is_phase():
                start = self._consumed - group_len
                self.tracker.enter(self._consumed, start, start)
                self._phase_stats_reset(distance)
                entered = True
            else:
                self._phase_stats_update(distance)
            self.state = PhaseState.PHASE
        else:
            if self.state.is_phase():
                closed = self._close(self._consumed - group_len)
                self._phase_stats_clear()
            self.state = PhaseState.TRANSITION
        return PhaseDecision(self.state, distance, entered, closed)

    # -- checkpointing ---------------------------------------------------------

    def _engine_state(self) -> Dict[str, object]:
        # float64 -> Python float -> JSON repr round-trips exactly, so
        # the restored vectors are bit-identical.
        return {
            "warmup_left": self._warmup_left,
            "fast": [float(value) for value in self._fast],
            "slow": [float(value) for value in self._slow],
            "stat_mean": self._stat_mean,
            "stat_var": self._stat_var,
            "stat_seen": self._stat_seen,
        }

    def _restore_engine_state(self, payload: Dict[str, object]) -> None:
        fast: List[float] = payload["fast"]  # type: ignore[assignment]
        slow: List[float] = payload["slow"]  # type: ignore[assignment]
        dim = self.config.sketch_dim
        if len(fast) != dim or len(slow) != dim:
            from repro.core.decision import CheckpointError

            raise CheckpointError(
                f"newma checkpoint sketch length {len(fast)}/{len(slow)} "
                f"does not match sketch_dim={dim}"
            )
        self._warmup_left = int(payload["warmup_left"])
        self._fast = np.asarray(fast, dtype=np.float64)
        self._slow = np.asarray(slow, dtype=np.float64)
        self._stat_mean = float(payload["stat_mean"])
        self._stat_var = float(payload["stat_var"])
        self._stat_seen = bool(payload["stat_seen"])
