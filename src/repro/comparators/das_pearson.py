"""Das et al. (CGO 2006): Pearson-correlation phase detection.

Their region-monitoring system compares the current window of samples
against the phase's *target set* using Pearson's coefficient of
correlation, against a fixed threshold.  We implement the global
variant: the target is the element-frequency vector of the window that
started the current phase; each subsequent window's frequency vector is
correlated against it.  A window with correlation below the threshold
ends the phase (and the next window becomes a new target candidate).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.decision import DecisionEngine, PhaseDecision
from repro.core.state import PhaseState
from repro.profiles.trace import BranchTrace

#: Default sample-window size and similarity threshold.
DAS_WINDOW = 4_096
DAS_THRESHOLD = 0.8


def pearson_correlation(left: Dict[int, int], right: Dict[int, int]) -> float:
    """Pearson's r between two sparse frequency vectors.

    The vectors range over the union of keys; absent keys count 0.
    Degenerate (zero-variance) vectors yield 1.0 when identical and 0.0
    otherwise.
    """
    keys = set(left) | set(right)
    n = len(keys)
    if n == 0:
        return 1.0
    sum_l = sum(left.get(k, 0) for k in keys)
    sum_r = sum(right.get(k, 0) for k in keys)
    mean_l = sum_l / n
    mean_r = sum_r / n
    cov = 0.0
    var_l = 0.0
    var_r = 0.0
    for k in keys:
        dl = left.get(k, 0) - mean_l
        dr = right.get(k, 0) - mean_r
        cov += dl * dr
        var_l += dl * dl
        var_r += dr * dr
    if var_l == 0.0 or var_r == 0.0:
        return 1.0 if left == right else 0.0
    return cov / math.sqrt(var_l * var_r)


@dataclass
class DasPearsonResult:
    """Per-element states plus per-window correlations (for inspection)."""

    states: np.ndarray
    correlations: List[float]


class DasPearsonDetector:
    """Streaming implementation of the Das et al. detector."""

    def __init__(
        self, window_size: int = DAS_WINDOW, threshold: float = DAS_THRESHOLD
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if not -1.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [-1, 1]")
        self.window_size = window_size
        self.threshold = threshold
        self._target: Optional[Dict[int, int]] = None

    def process_window(self, counts: Dict[int, int]) -> float:
        """Feed one window's frequency vector; returns its correlation.

        The first window after a phase break becomes the new target and
        scores 0 (transition).
        """
        if self._target is None:
            self._target = dict(counts)
            return 0.0
        correlation = pearson_correlation(counts, self._target)
        if correlation < self.threshold:
            self._target = dict(counts)
        return correlation

    def run(self, trace: BranchTrace) -> DasPearsonResult:
        """Run over a whole trace; one state per element."""
        data = trace.array
        total = int(data.size)
        states = np.zeros(total, dtype=bool)
        correlations: List[float] = []
        for start in range(0, total, self.window_size):
            window = data[start : start + self.window_size]
            counts = Counter(window.tolist())
            correlation = self.process_window(counts)
            correlations.append(correlation)
            if correlation >= self.threshold:
                states[start : start + window.size] = True
        return DasPearsonResult(states=states, correlations=correlations)


def run_das_pearson(
    trace: BranchTrace,
    window_size: int = DAS_WINDOW,
    threshold: float = DAS_THRESHOLD,
) -> DasPearsonResult:
    """Convenience one-shot run of the Das et al. detector."""
    return DasPearsonDetector(window_size, threshold).run(trace)


class DasLocalDetector:
    """The *local* variant Das et al. actually advocate: one detector
    per program region.

    Their CGO 2006 paper argues for monitoring events per region rather
    than globally, so a phase change confined to one region is not
    drowned out by stable behavior elsewhere.  We take a region to be a
    method (the natural unit our profile elements encode): the trace is
    demultiplexed by method id, each region runs its own
    :class:`DasPearsonDetector` (with the window scaled down by the
    region count so the total state is comparable), and an element is
    in phase when its *own region's* detector says so.
    """

    def __init__(
        self,
        window_size: int = DAS_WINDOW,
        threshold: float = DAS_THRESHOLD,
        min_region_elements: int = 64,
    ) -> None:
        self.window_size = window_size
        self.threshold = threshold
        self.min_region_elements = min_region_elements

    def run(self, trace: BranchTrace) -> DasPearsonResult:
        """Run per-region detection; one state per merged element."""
        from repro.profiles.element import METHOD_SHIFT

        data = trace.array
        total = int(data.size)
        states = np.zeros(total, dtype=bool)
        correlations: List[float] = []
        if total == 0:
            return DasPearsonResult(states=states, correlations=correlations)
        regions = data >> np.int64(METHOD_SHIFT)
        unique_regions = np.unique(regions)
        window = max(16, self.window_size // max(1, len(unique_regions)))
        for region in unique_regions.tolist():
            positions = np.flatnonzero(regions == region)
            if positions.size < self.min_region_elements:
                continue  # too little data to monitor; stays transition
            sub_trace = BranchTrace(data[positions], name=f"{trace.name}#m{region}")
            result = DasPearsonDetector(window, self.threshold).run(sub_trace)
            states[positions] = result.states
            correlations.extend(result.correlations)
        return DasPearsonResult(states=states, correlations=correlations)


def run_das_local(
    trace: BranchTrace,
    window_size: int = DAS_WINDOW,
    threshold: float = DAS_THRESHOLD,
) -> DasPearsonResult:
    """Convenience one-shot run of the Das et al. local-region variant."""
    return DasLocalDetector(window_size, threshold).run(trace)


class DasPearsonEngine(DecisionEngine):
    """The global Das et al. detector as a :class:`DecisionEngine`.

    An *online projection* of :class:`DasPearsonDetector`:
    ``config.cw_size`` is the sample window, elements buffer until a
    window fills, and each full window's Pearson correlation against
    the phase target updates the in-phase flag.  Because the decision
    protocol colors elements going forward, the per-element states lag
    the batch formulation (:func:`run_das_pearson`, which colors each
    window retroactively) by one window — the batch functions remain
    the faithful reference implementation.

    Statistic semantics are the correlation's: **high** means stable
    (phase at ``statistic >= bar``), the reverse of the changepoint
    families.  ``stat_threshold`` overrides :data:`DAS_THRESHOLD`.
    """

    family = "das_pearson"

    def __init__(self, config, observer=None, metrics=None) -> None:
        super().__init__(config, observer=observer, metrics=metrics)
        bar = config.stat_threshold
        self.stat_threshold = DAS_THRESHOLD if bar is None else bar
        self._window = config.cw_size
        self._detector = DasPearsonDetector(self._window, min(1.0, self.stat_threshold))
        self._buffer: List[int] = []
        self._in_phase = False

    def step(self, elements) -> "PhaseDecision":
        group_len = len(elements)
        self._consumed += group_len
        self._buffer.extend(elements)
        statistic: Optional[float] = None
        window = self._window
        while len(self._buffer) >= window:
            chunk = self._buffer[:window]
            del self._buffer[:window]
            correlation = self._detector.process_window(Counter(chunk))
            statistic = correlation
            self._in_phase = correlation >= self.stat_threshold
            observer = self._observer
            if observer is not None:
                step = self._consumed
                observer.emit(
                    {
                        "ev": "similarity",
                        "step": step,
                        "value": correlation,
                        "cw": 0,
                        "tw": 0,
                    }
                )
                observer.emit(
                    {
                        "ev": "decision",
                        "step": step,
                        "state": "P" if self._in_phase else "T",
                        "value": correlation,
                        "bar": self.stat_threshold,
                    }
                )
        entered = False
        closed = None
        if self._in_phase:
            if not self.state.is_phase():
                start = self._consumed - group_len
                self.tracker.enter(self._consumed, start, start)
                # The flag only flips at a window boundary, so a fresh
                # correlation is always in hand on enter.
                self._phase_stats_reset(statistic if statistic is not None else 0.0)
                entered = True
            elif statistic is not None:
                self._phase_stats_update(statistic)
            self.state = PhaseState.PHASE
        else:
            if self.state.is_phase():
                closed = self._close(self._consumed - group_len)
                self._phase_stats_clear()
            self.state = PhaseState.TRANSITION
        return PhaseDecision(self.state, statistic, entered, closed)

    def _engine_state(self) -> Dict[str, object]:
        target = self._detector._target
        return {
            "buffer": list(self._buffer),
            "in_phase": self._in_phase,
            # Pair list keeps the dict's insertion order, which the
            # sparse Pearson's key-set iteration depends on for
            # bit-identical restores.
            "target": None if target is None else [[k, v] for k, v in target.items()],
        }

    def _restore_engine_state(self, payload: Dict[str, object]) -> None:
        self._buffer = [int(element) for element in payload["buffer"]]
        self._in_phase = bool(payload["in_phase"])
        target = payload["target"]
        self._detector._target = (
            None if target is None else {int(k): int(v) for k, v in target}
        )
