"""Related-work detectors (Section 6).

Three extant online phase detectors, for comparison against the
framework's instantiations:

- :mod:`repro.comparators.dhodapkar_smith` — working-set analysis with a
  fixed 100K window, skipFactor = window, threshold 0.5 (expressible as
  a framework instantiation — the paper's "Fixed Interval" family);
- :mod:`repro.comparators.lu_dynamo` — the Lu et al. dynamic-binary-
  optimizer detector: average sampled PC vs a mean±stddev interval of
  the previous seven windows;
- :mod:`repro.comparators.das_pearson` — the Das et al. local detector:
  Pearson correlation between the current sample window and the
  phase's target window, against a fixed threshold.
"""

from repro.comparators.dhodapkar_smith import (
    DHODAPKAR_SMITH_WINDOW,
    dhodapkar_smith_config,
    run_dhodapkar_smith,
)
from repro.comparators.lu_dynamo import LuDynamoDetector, run_lu_dynamo
from repro.comparators.das_pearson import (
    DasLocalDetector,
    DasPearsonDetector,
    run_das_local,
    run_das_pearson,
)

__all__ = [
    "DHODAPKAR_SMITH_WINDOW",
    "dhodapkar_smith_config",
    "run_dhodapkar_smith",
    "LuDynamoDetector",
    "run_lu_dynamo",
    "DasLocalDetector",
    "DasPearsonDetector",
    "run_das_local",
    "run_das_pearson",
]
