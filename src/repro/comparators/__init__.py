"""Detector families beyond the paper's windowed grid, plus the registry.

Related-work detectors (Section 6) and post-paper changepoint families,
for comparison against the framework's instantiations:

- :mod:`repro.comparators.dhodapkar_smith` — working-set analysis with a
  fixed 100K window, skipFactor = window, threshold 0.5 (expressible as
  a framework instantiation — the paper's "Fixed Interval" family);
- :mod:`repro.comparators.lu_dynamo` — the Lu et al. dynamic-binary-
  optimizer detector: average sampled PC vs a mean±stddev interval of
  the previous seven windows;
- :mod:`repro.comparators.das_pearson` — the Das et al. detector:
  Pearson correlation between the current sample window and the
  phase's target window, against a fixed threshold;
- :mod:`repro.comparators.focus` — FOCuS, the functional-pruning CUSUM
  changepoint statistic over the hashed branch stream;
- :mod:`repro.comparators.newma` — NEWMA, the dual-forgetting-factor
  EWMA distance over hashed feature sketches.

The **family registry** is the one code path from a family name (the
``family`` field of :class:`~repro.core.config.DetectorConfig` and of
version-2 checkpoints) to a live :class:`~repro.core.decision.DecisionEngine`:
:func:`engine_family` resolves a name to its :class:`FamilySpec`,
:func:`family_names` enumerates what is registered.  The decision
layer's :func:`~repro.core.decision.build_engine` and
:func:`~repro.core.decision.restore_engine` dispatch through it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.core.config import (
    AnalyzerKind,
    DetectorConfig,
    ModelKind,
    TrailingPolicy,
)
from repro.core.decision import CheckpointError, DecisionEngine

from repro.comparators.dhodapkar_smith import (
    DHODAPKAR_SMITH_THRESHOLD,
    DHODAPKAR_SMITH_WINDOW,
    dhodapkar_smith_config,
    run_dhodapkar_smith,
)
from repro.comparators.lu_dynamo import (
    LU_SIGMA,
    LU_WINDOW,
    LuDynamoDetector,
    LuDynamoEngine,
    run_lu_dynamo,
)
from repro.comparators.das_pearson import (
    DAS_THRESHOLD,
    DAS_WINDOW,
    DasLocalDetector,
    DasPearsonDetector,
    DasPearsonEngine,
    run_das_local,
    run_das_pearson,
)
from repro.comparators.focus import FOCUS_STAT_THRESHOLD, FocusEngine
from repro.comparators.newma import NEWMA_STAT_THRESHOLD, NewmaEngine

__all__ = [
    "DHODAPKAR_SMITH_WINDOW",
    "dhodapkar_smith_config",
    "run_dhodapkar_smith",
    "LuDynamoDetector",
    "LuDynamoEngine",
    "run_lu_dynamo",
    "DasLocalDetector",
    "DasPearsonDetector",
    "DasPearsonEngine",
    "run_das_local",
    "run_das_pearson",
    "FocusEngine",
    "FOCUS_STAT_THRESHOLD",
    "NewmaEngine",
    "NEWMA_STAT_THRESHOLD",
    "FamilySpec",
    "engine_family",
    "family_names",
]


@dataclass(frozen=True)
class FamilySpec:
    """One registered detector family: how to build, restore, label it.

    ``build(config, observer=..., metrics=...)`` returns a live engine;
    ``restore(data, observer=..., metrics=...)`` rebuilds one from a
    version-2 checkpoint dict; ``default_config()`` returns a runnable
    representative configuration (callers ``replace()`` fields to
    taste).  ``statistic`` documents the family's decision statistic
    and which direction means stable.
    """

    name: str
    summary: str
    statistic: str
    build: Callable[..., DecisionEngine]
    restore: Callable[..., DecisionEngine]
    default_config: Callable[[], DetectorConfig]


def _build_windowed(
    config: DetectorConfig, observer=None, metrics=None
) -> DecisionEngine:
    from repro.core.runtime import DetectorRuntime

    return DetectorRuntime(config, observer=observer, metrics=metrics)


def _restore_windowed(data, observer=None, metrics=None) -> DecisionEngine:
    from repro.core.runtime import DetectorRuntime

    return DetectorRuntime.restore(data, observer=observer, metrics=metrics)


def _build_dhodapkar_smith(
    config: DetectorConfig, observer=None, metrics=None
) -> DecisionEngine:
    """Normalize to the Fixed-Interval windowed instantiation.

    The family name is an alias: the engine is a plain windowed
    :class:`~repro.core.runtime.DetectorRuntime` pinned to Dhodapkar &
    Smith's policies (unweighted model, threshold 0.5, skipFactor =
    TW = CW), with only ``cw_size`` taken from the caller's config.
    Its checkpoints are therefore version-1 windowed checkpoints.
    """
    from repro.core.runtime import DetectorRuntime

    normalized = replace(
        config,
        family="windowed",
        tw_size=config.cw_size,
        skip_factor=config.cw_size,
        trailing=TrailingPolicy.CONSTANT,
        model=ModelKind.UNWEIGHTED,
        analyzer=AnalyzerKind.THRESHOLD,
        threshold=DHODAPKAR_SMITH_THRESHOLD,
    )
    return DetectorRuntime(normalized, observer=observer, metrics=metrics)


def _restore_dhodapkar_smith(data, observer=None, metrics=None) -> DecisionEngine:
    raise CheckpointError(
        "dhodapkar_smith engines checkpoint as the windowed family "
        "(version 1); restore through repro.core.decision.restore_engine"
    )


_REGISTRY: Dict[str, FamilySpec] = {}


def _register(spec: FamilySpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    FamilySpec(
        name="windowed",
        summary="The paper's grid: windowed working-set similarity "
        "(Model x Analyzer x WindowPolicy).",
        statistic="similarity in [0, 1]; high = stable",
        build=_build_windowed,
        restore=_restore_windowed,
        default_config=lambda: DetectorConfig(cw_size=250),
    )
)
_register(
    FamilySpec(
        name="focus",
        summary="FOCuS functional-pruning CUSUM over the hashed "
        "branch-frequency stream (arXiv 2110.08205).",
        statistic="max CUSUM statistic; low = stable, "
        f"bar defaults to {FOCUS_STAT_THRESHOLD}",
        build=lambda config, observer=None, metrics=None: FocusEngine(
            config, observer=observer, metrics=metrics
        ),
        restore=FocusEngine.restore,
        default_config=lambda: DetectorConfig(cw_size=250, family="focus"),
    )
)
_register(
    FamilySpec(
        name="newma",
        summary="NEWMA dual-forgetting-factor EWMA distance on hashed "
        "feature sketches (arXiv 1805.08061).",
        statistic="EWMA L2 distance; low = stable, adaptive bar = "
        f"running mean + {NEWMA_STAT_THRESHOLD} std by default",
        build=lambda config, observer=None, metrics=None: NewmaEngine(
            config, observer=observer, metrics=metrics
        ),
        restore=NewmaEngine.restore,
        default_config=lambda: DetectorConfig(cw_size=250, family="newma"),
    )
)
_register(
    FamilySpec(
        name="das_pearson",
        summary="Das et al. (CGO 2006) Pearson correlation against the "
        "phase's target window (online projection).",
        statistic="Pearson r; HIGH = stable, "
        f"bar defaults to {DAS_THRESHOLD}",
        build=lambda config, observer=None, metrics=None: DasPearsonEngine(
            config, observer=observer, metrics=metrics
        ),
        restore=DasPearsonEngine.restore,
        default_config=lambda: DetectorConfig(
            cw_size=DAS_WINDOW, family="das_pearson"
        ),
    )
)
_register(
    FamilySpec(
        name="lu_dynamo",
        summary="Lu et al. (JILP 2004) average-site interval test "
        "(online projection).",
        statistic="deviation in stddev units; low = stable, "
        f"bar defaults to {LU_SIGMA}",
        build=lambda config, observer=None, metrics=None: LuDynamoEngine(
            config, observer=observer, metrics=metrics
        ),
        restore=LuDynamoEngine.restore,
        default_config=lambda: DetectorConfig(
            cw_size=LU_WINDOW, family="lu_dynamo"
        ),
    )
)
_register(
    FamilySpec(
        name="dhodapkar_smith",
        summary="Dhodapkar & Smith (ISCA 2002) fixed-interval working "
        "sets — an alias for the windowed Fixed-Interval instantiation.",
        statistic="working-set similarity in [0, 1]; high = stable",
        build=_build_dhodapkar_smith,
        restore=_restore_dhodapkar_smith,
        default_config=lambda: DetectorConfig(
            cw_size=DHODAPKAR_SMITH_WINDOW, family="dhodapkar_smith"
        ),
    )
)


def family_names() -> List[str]:
    """Registered family names, registration order (windowed first)."""
    return list(_REGISTRY)


def engine_family(name: str) -> FamilySpec:
    """Resolve a family name to its :class:`FamilySpec`.

    Raises ``ValueError`` naming the registered families on a miss —
    the error surfaces verbatim through the CLI's ``--family`` flag.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown detector family {name!r} (registered: {known})"
        ) from None
