"""Dhodapkar & Smith (ISCA 2002) as a framework instantiation.

Their multi-configuration-hardware detector compares working sets of
consecutive fixed intervals: an unweighted set model over a window of
100,000 instructions, with skipFactor equal to the window size and an
empirically chosen similarity threshold of 0.5.  In the framework's
vocabulary that is exactly the Fixed-Interval family with the
unweighted model and a 0.5 threshold — which is why the paper can
evaluate it directly (and show that skipFactor = window is markedly
less accurate than skipFactor = 1).
"""

from __future__ import annotations

from repro.core.config import DetectorConfig, ModelKind
from repro.core.detector import DetectionResult
from repro.core.engine import run_detector
from repro.profiles.trace import BranchTrace

#: The window size used in the original paper (instructions; we apply it
#: in profile elements, scaled like every other nominal value).
DHODAPKAR_SMITH_WINDOW = 100_000

#: Their empirically chosen similarity threshold.
DHODAPKAR_SMITH_THRESHOLD = 0.5


def dhodapkar_smith_config(window_size: int = DHODAPKAR_SMITH_WINDOW) -> DetectorConfig:
    """The Dhodapkar & Smith detector as a DetectorConfig.

    Pass an already-scaled ``window_size`` when running against scaled
    traces (e.g. ``profile.actual(DHODAPKAR_SMITH_WINDOW)``).
    """
    return DetectorConfig.fixed_interval(
        cw_size=window_size,
        model=ModelKind.UNWEIGHTED,
        threshold=DHODAPKAR_SMITH_THRESHOLD,
    )


def run_dhodapkar_smith(
    trace: BranchTrace, window_size: int = DHODAPKAR_SMITH_WINDOW
) -> DetectionResult:
    """Run the Dhodapkar & Smith detector over ``trace``."""
    return run_detector(trace, dhodapkar_smith_config(window_size))
