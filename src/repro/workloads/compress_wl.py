"""``_201_compress`` stand-in.

The paper's compress is a block compressor: almost all execution sits
inside a handful of very long, very regular per-block loops, giving few
phases and near-total phase coverage at every MPL (Table 1(b): 46
phases at MPL 1K down to 6 at 100K, with 34-99% coverage).

Structure here: for each input block, a long modeling/encoding loop
followed by a shorter verification (decompress) loop, with a small
irregular header computation between blocks to separate them.

A note on the paper's Figure 5 compress anomaly (weighted model beats
unweighted on compress only): that behavior requires the benchmark's
stages to be distinguishable by branch *frequencies* while sharing
branch *sites*.  We experimented with such a shared-kernel variant; it
does flip the model preference, but sharing sites also defeats RN/LNN
anchoring (no element is "noisy" at a stage boundary), which inverts
the paper's Figure 8 result.  Since the anchoring behavior is the more
central claim, this workload keeps stage-distinct sites and the Figure
5 anomaly remains a documented residual (EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    blocks = scaled(6, min(1.0, scale), minimum=2)
    compress_iters = scaled(3500, scale, minimum=64)
    verify_iters = scaled(1100, scale, minimum=32)
    return f"""
// _201_compress stand-in: long regular per-block loops.
fn compress_block(block, n) {{
    var state = block * 2654435 + 12345;
    var out = 0;
    var i = 0;
    while (i < n) {{
        state = (state * 31 + i) % 65536;
        if (state % 7 < 3) {{
            out = out + state % 13;
        }}
        if (state % 16 == 0) {{
            out = out + 2;
        }}
        i = i + 1;
    }}
    return out;
}}

fn verify_block(block, n) {{
    var check = block;
    var i = 0;
    while (i < n) {{
        check = (check * 17 + 7) % 32768;
        if (check % 5 == 0) {{
            check = check + 1;
        }}
        i = i + 1;
    }}
    return check;
}}

fn write_header(block, payload) {{
    var h = payload;
    if (block % 2 == 0) {{ h = h + 19; }}
    if (h % 3 == 1) {{ h = h * 2; }}
    if (h % 7 < 4) {{ h = h - 5; }}
    if (block > 2) {{ h = h + block; }}
    if (h % 11 == 0) {{ h = h + 1; }}
    setmem(block, h);
    return h;
}}

fn main() {{
    var total = 0;
    var block = 0;
    while (block < {blocks}) {{
        var payload = compress_block(block, {compress_iters});
        total = total + verify_block(block, {verify_iters});
        total = total + write_header(block, payload);
        block = block + 1;
    }}
    return total;
}}
"""


WORKLOAD = Workload(name="compress", mirrors="_201_compress", source=_source, seed=201)
