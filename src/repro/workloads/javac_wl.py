"""``_213_javac`` stand-in.

javac compiles Java source: a recursive-descent front end over many
compilation units, followed by per-unit attribution and code
generation.  Its execution is the most irregular of the suite — Table
1(b) shows modest coverage at every MPL (45-66%) because much of the
work sits in medium-sized, non-repeating spans.

Structure here: compilation units are *unrolled* top-level calls with
irregular glue (no loop spans the run); unit sizes vary by an order of
magnitude (two "big file" units), so some loops qualify at large MPL
while plenty of irregular work never does.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    units = 14
    tokens_base = scaled(150, scale, minimum=16)
    tokens_span = scaled(260, scale, minimum=20)
    big_factor = 7
    unit_calls = "\n".join(
        f"    total = total + compile_unit({u}, {big_factor if u in (4, 9) else 1});\n"
        f"    total = total + link_unit({u}, total);"
        for u in range(units)
    )
    return f"""
// _213_javac stand-in: compiler passes over varying-size units.
fn tokenize(n, unit) {{
    var toks = 0;
    var i = 0;
    while (i < n) {{
        var c = (i * 31 + unit * 7) % 11;
        if (c < 4) {{
            toks = toks + 1;
        }} else if (c < 7) {{
            toks = toks + 2;
        }}
        i = i + 1;
    }}
    return toks;
}}

fn parse_expr(depth, seedv) {{
    // Recursive-descent parse of a nested expression.
    if (depth <= 0) {{
        return seedv % 9;
    }}
    var v = seedv;
    if (v % 3 == 0) {{
        v = v + parse_expr(depth - 1, v / 2 + 1);
    }} else if (v % 3 == 1) {{
        v = v + parse_expr(depth - 1, v / 3 + 2);
        v = v + parse_expr(depth - 2, v / 5 + 3);
    }} else {{
        v = v + 1;
    }}
    return v;
}}

fn attribute(symbols, unit) {{
    var resolved = 0;
    var s = 0;
    while (s < symbols) {{
        var h = (s * 17 + unit) % 13;
        if (h < 5) {{ resolved = resolved + 1; }}
        if (h == 7) {{ resolved = resolved + 2; }}
        s = s + 1;
    }}
    return resolved;
}}

fn codegen(stmts, unit) {{
    var bytes = 0;
    var s = 0;
    while (s < stmts) {{
        if ((s + unit) % 4 == 0) {{
            bytes = bytes + 3;
        }} else {{
            bytes = bytes + 1;
        }}
        s = s + 1;
    }}
    return bytes;
}}

fn glue(unit, v) {{
    var g = v + unit * 3;
    if (g % 2 == 0) {{ g = g + 7; }}
    if (g % 3 == 2) {{ g = g - 4; }}
    if (g % 5 == 1) {{ g = g * 2; }}
    if (g % 7 == 3) {{ g = g + unit; }}
    if (g % 11 == 0) {{ g = g + 1; }}
    if (g % 13 == 5) {{ g = g - 2; }}
    if (g > 100000) {{ g = g % 99991; }}
    return g % 1000;
}}

fn compile_unit(unit, factor) {{
    var size = ({tokens_base} + (unit * 137) % {tokens_span}) * factor;
    var total = 0;
    var toks = tokenize(size, unit);
    total = total + glue(unit, toks);
    total = total + parse_expr(5 + unit % 4, toks + unit);
    total = total + glue(unit, total);
    total = total + attribute(size / 2 + 3, unit);
    total = total + glue(unit, total);
    total = total + codegen(size / 3 + 5, unit);
    return total;
}}

fn link_unit(unit, v) {{
    var x = v + unit * 31;
    if (x % 2 == 1) {{ x = x + 9; }}
    if (x % 3 == 0) {{ x = x - 2; }}
    if (x % 5 == 3) {{ x = x * 2; }}
    if (x % 7 == 6) {{ x = x + unit; }}
    if (x % 11 == 4) {{ x = x + 1; }}
    if (x > 100000) {{ x = x % 99991; }}
    setmem(60000 + unit, x);
    return x % 1000;
}}

fn main() {{
    var total = 0;
{unit_calls}
    return total;
}}
"""


WORKLOAD = Workload(name="javac", mirrors="_213_javac", source=_source, seed=213)
