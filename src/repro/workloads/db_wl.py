"""``_209_db`` stand-in.

db performs database operations (add, delete, find, sort) over an
in-memory address file: long scan and sort loops dominated by a few
operations, giving very high coverage (84-97%) with phase counts
falling from 1152 (MPL 1K) to 5 (100K).

Structure here: an index-build loop, then a stream of operations —
linear scans, a shell-style sort pass with nested loops, and point
lookups — over a memory-resident table.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    records = scaled(220, scale, minimum=24)
    operations = scaled(18, min(1.0, scale), minimum=4)
    return f"""
// _209_db stand-in: scans, sorts, and lookups over a memory table.
fn build_table(n) {{
    var i = 0;
    while (i < n) {{
        setmem(i, (i * 7919 + 13) % 10007);
        i = i + 1;
    }}
    return n;
}}

fn scan_count(n, key) {{
    var count = 0;
    var i = 0;
    while (i < n) {{
        if (mem(i) % 97 == key % 97) {{
            count = count + 1;
        }}
        i = i + 1;
    }}
    return count;
}}

fn sort_pass(n) {{
    // One bubble pass repeated until no swaps in the window; nested
    // loops yield a long sorting phase.
    var swapped = 1;
    var passes = 0;
    while (swapped > 0 && passes < 6) {{
        swapped = 0;
        var i = 0;
        while (i < n - 1) {{
            if (mem(i) > mem(i + 1)) {{
                var tmp = mem(i);
                setmem(i, mem(i + 1));
                setmem(i + 1, tmp);
                swapped = swapped + 1;
            }}
            i = i + 1;
        }}
        passes = passes + 1;
    }}
    return passes;
}}

fn lookup(n, key) {{
    var lo = 0;
    var hi = n;
    while (lo < hi) {{
        var mid = (lo + hi) / 2;
        if (mem(mid) < key) {{
            lo = mid + 1;
        }} else {{
            hi = mid;
        }}
    }}
    return lo;
}}

fn main() {{
    var n = {records};
    build_table(n);
    var total = 0;
    var op = 0;
    while (op < {operations}) {{
        var kind = (op * 11) % 4;
        if (kind == 0) {{
            total = total + scan_count(n, op * 31);
        }} else if (kind == 1) {{
            total = total + sort_pass(n);
        }} else if (kind == 2) {{
            total = total + lookup(n, rnd(10007));
            total = total + scan_count(n, op * 17);
        }} else {{
            setmem(rnd(n), rnd(10007));
            total = total + scan_count(n, op * 13);
        }}
        op = op + 1;
    }}
    return total;
}}
"""


WORKLOAD = Workload(name="db", mirrors="_209_db", source=_source, seed=209)
