"""Benchmark characteristics — the data behind Table 1(a).

For each benchmark: dynamic branches, loop executions, method
invocations, and recursion roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.profiles.callloop import CallLoopTrace
from repro.profiles.trace import BranchTrace


@dataclass(frozen=True)
class BenchmarkCharacteristics:
    """One Table 1(a) row."""

    name: str
    dynamic_branches: int
    loop_executions: int
    method_invocations: int
    recursion_roots: int

    @staticmethod
    def of(branch_trace: BranchTrace, call_loop: CallLoopTrace) -> "BenchmarkCharacteristics":
        """Compute the row for one benchmark's traces."""
        return BenchmarkCharacteristics(
            name=branch_trace.name or call_loop.name,
            dynamic_branches=len(branch_trace),
            loop_executions=call_loop.loop_executions(),
            method_invocations=call_loop.method_invocations(),
            recursion_roots=call_loop.recursion_roots(),
        )


def characteristics_table(
    traces: Dict[str, tuple],
) -> List[BenchmarkCharacteristics]:
    """Table 1(a) rows for a suite mapping ``name -> (branch, call-loop)``."""
    return [
        BenchmarkCharacteristics.of(branch, call_loop)
        for name, (branch, call_loop) in traces.items()
    ]
