"""``JLex`` stand-in.

JLex generates a lexical analyzer from a specification: a handful of
long, distinct algorithmic stages (NFA construction, subset
construction, DFA minimization, code emission).  Table 1(b) shows very
high coverage throughout (78-97%) with a modest number of phases (102
at MPL 1K, 2 at 100K).

Structure here: the four classic stages, each a substantial nested-loop
computation over a state table, run once in sequence.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    # The NFA/DFA stages multiply states x alphabet x passes, so each
    # dimension scales as sqrt(scale) to keep the trace ~linear in the
    # scale knob (identical sources at scale = 1).
    dimension = scale ** 0.5
    rules = scaled(48, dimension, minimum=8)
    nfa_states = scaled(70, dimension, minimum=10)
    dfa_states = scaled(40, dimension, minimum=8)
    alphabet = scaled(20, dimension, minimum=4)
    emit_lines = scaled(160, scale, minimum=16)
    return f"""
// JLex stand-in: NFA -> DFA -> minimize -> emit.
fn read_spec(n) {{
    var rules = 0;
    var i = 0;
    while (i < n) {{
        var c = (i * 11) % 7;
        if (c < 3) {{ rules = rules + 1; }}
        i = i + 1;
    }}
    return rules;
}}

fn build_nfa(states, rules) {{
    var edges = 0;
    var s = 0;
    while (s < states) {{
        var r = 0;
        while (r < rules / 4 + 2) {{
            if ((s * 7 + r * 3) % 5 < 2) {{
                setmem(50000 + (s * 131 + r) % 8191, s);
                edges = edges + 1;
            }}
            r = r + 1;
        }}
        s = s + 1;
    }}
    return edges;
}}

fn subset_construction(nfa_states, alphabet) {{
    var dfa = 1;
    var work = 1;
    while (work > 0) {{
        work = work - 1;
        var a = 0;
        while (a < alphabet) {{
            var closure = 0;
            var s = 0;
            while (s < nfa_states / 4 + 3) {{
                if ((s * 13 + a * 7 + dfa) % 6 < 2) {{
                    closure = closure + 1;
                }}
                s = s + 1;
            }}
            if (closure > 0 && dfa < {dfa_states}) {{
                dfa = dfa + 1;
                if (dfa % 3 == 0 && work < 6) {{
                    work = work + 1;
                }}
            }}
            a = a + 1;
        }}
    }}
    return dfa;
}}

fn minimize(dfa_states, alphabet) {{
    var partitions = 2;
    var changed = 1;
    while (changed > 0 && partitions < dfa_states) {{
        changed = 0;
        var p = 0;
        while (p < dfa_states) {{
            var q = 0;
            while (q < alphabet) {{
                if ((p * 17 + q * 5 + partitions) % 23 == 0) {{
                    changed = 1;
                }}
                q = q + 1;
            }}
            p = p + 1;
        }}
        if (changed > 0) {{
            partitions = partitions + 1;
        }}
    }}
    return partitions;
}}

fn emit(lines, dfa) {{
    var bytes = 0;
    var i = 0;
    while (i < lines) {{
        if ((i + dfa) % 4 == 0) {{
            bytes = bytes + 12;
        }} else {{
            bytes = bytes + 7;
        }}
        i = i + 1;
    }}
    return bytes;
}}

fn main() {{
    var rules = read_spec({rules});
    var edges = build_nfa({nfa_states}, rules);
    var dfa = subset_construction({nfa_states}, {alphabet});
    var parts = minimize({dfa_states} + dfa % 7, {alphabet});
    var bytes = emit({emit_lines}, dfa);
    return rules + edges + dfa + parts + bytes;
}}
"""


WORKLOAD = Workload(name="jlex", mirrors="JLex", source=_source, seed=206)
