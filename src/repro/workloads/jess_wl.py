"""``_202_jess`` stand-in.

Jess is an expert-system shell: execution is thousands of *small*
rule-matching loops of widely varying length, occasional rule firings
(short method bursts, sometimes recursive), and per-round agenda
maintenance.  Table 1(b) shows the signature: a huge number of small
phases at low MPL (3250 at 1K) collapsing quickly as MPL grows, with
mid-range coverage at large MPL (≈42-44% at 50K-100K).

Structure here: inference rounds are *unrolled* top-level calls (the
paper's benchmarks have no single loop spanning the whole run), each a
sweep of variable-length match loops; every fourth round works on a 4x
fact set, so a few large phases survive at large MPL.  Rounds are
separated by irregular agenda-rebuild glue so they never merge.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    rounds = 12
    # Rules x facts is quadratic; scale each factor by sqrt(scale).
    dimension = scale ** 0.5
    rules = scaled(26, dimension, minimum=6)
    fact_base = scaled(14, dimension, minimum=4)
    fact_span = scaled(58, dimension, minimum=8)
    big_factor = 5
    round_calls = "\n".join(
        f"    total = total + run_round({r}, {big_factor if r % 4 == 3 else 1});\n"
        f"    total = total + rebuild_agenda({r}, total);"
        for r in range(rounds)
    )
    return f"""
// _202_jess stand-in: many small variable-length match loops.
fn match_rule(rule, facts) {{
    var hits = 0;
    var i = 0;
    while (i < facts) {{
        if ((i * 7 + rule * 3) % 5 == 0) {{
            hits = hits + 1;
        }}
        i = i + 1;
    }}
    return hits;
}}

fn derive(depth, seedv) {{
    // A short recursive inference chain (recursion roots in Table 1a).
    if (depth <= 0) {{
        return seedv;
    }}
    var v = seedv;
    if (v % 2 == 0) {{ v = v + 3; }}
    return derive(depth - 1, v) + 1;
}}

fn fire(rule, strength) {{
    var v = strength;
    if (rule % 4 == 0) {{
        v = v + derive(3 + rule % 3, strength);
    }}
    if (v % 3 == 1) {{ v = v * 2; }}
    if (v % 5 < 2) {{ v = v - 1; }}
    setmem(rule, v);
    return v;
}}

fn run_round(round, factor) {{
    var total = 0;
    var rule = 0;
    while (rule < {rules}) {{
        var facts = ({fact_base} + (rule * 13 + round * 7) % {fact_span}) * factor;
        var hits = match_rule(rule, facts);
        if (hits % 3 == 0) {{
            total = total + fire(rule, hits);
        }}
        rule = rule + 1;
    }}
    return total;
}}

fn rebuild_agenda(round, v) {{
    // Irregular non-loop glue between rounds: keeps round executions
    // from merging into a single giant phase.
    var a = v + round * 97;
    if (a % 2 == 0) {{ a = a + 11; }}
    if (a % 3 == 0) {{ a = a + 7; }}
    if (a % 5 == 0) {{ a = a - 3; }}
    if (a % 7 == 0) {{ a = a + 1; }}
    if (a % 11 == 0) {{ a = a * 2; }}
    if (a % 13 == 3) {{ a = a - 9; }}
    if (a > 100000) {{ a = a % 99991; }}
    if (a % 17 < 5) {{ a = a + round; }}
    setmem(10000 + round, a);
    return a % 1000;
}}

fn main() {{
    var total = 0;
{round_calls}
    return total;
}}
"""


WORKLOAD = Workload(name="jess", mirrors="_202_jess", source=_source, seed=202)
