"""The benchmark suite: eight MiniLang workloads mirroring SPECjvm98 + JLex.

Each workload's *phase-relevant* structure (loop sizes, nesting,
recursion, method-invocation runs, irregular glue) mirrors one of the
paper's benchmarks; see DESIGN.md for the substitution rationale.
"""

from repro.workloads.base import Workload, scaled
from repro.workloads.characteristics import (
    BenchmarkCharacteristics,
    characteristics_table,
)
from repro.workloads.suite import (
    ALL_WORKLOADS,
    DEFAULT_CACHE_DIR,
    WORKLOADS_BY_NAME,
    load_suite,
    load_traces,
    workload,
    workload_names,
)

__all__ = [
    "Workload",
    "scaled",
    "BenchmarkCharacteristics",
    "characteristics_table",
    "ALL_WORKLOADS",
    "WORKLOADS_BY_NAME",
    "DEFAULT_CACHE_DIR",
    "load_suite",
    "load_traces",
    "workload",
    "workload_names",
]
