"""``_222_mpegaudio`` stand-in.

mpegaudio decodes an MP3 stream: a long sequence of frames, each
processed by a fixed cascade of small tight filter loops, grouped into
granules.  Table 1(b) shows the signature: an enormous number of tiny
phases at low MPL (7,594 at 1K), intermediate frame/granule groupings,
then 2 giant phases at 100K (99.75% coverage).

Structure here: *unrolled* granule calls (two audio "channels" of
granules, so the largest MPL sees two giant merged spans), each granule
a frame loop whose body runs a windowing loop, two subband filter
loops (every fourth frame uses a 6x long-block filter), and an output
loop.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    granules = 10
    # Frames x per-frame loop iterations is quadratic; scale each
    # factor by sqrt(scale).
    dimension = scale ** 0.5
    frames_per_granule = scaled(22, dimension, minimum=4)
    window_iters = scaled(24, dimension, minimum=5)
    filter_iters = scaled(30, dimension, minimum=6)
    output_iters = scaled(18, dimension, minimum=4)
    lines = []
    for g in range(granules):
        lines.append(f"    pcm = pcm + decode_granule({g}, {frames_per_granule});")
        if g == granules // 2 - 1:
            # A mid-stream seek splits the run into two giant merged
            # spans (the paper's 2 phases at MPL 100K).
            lines.append("    pcm = pcm + seek_stream(pcm);")
    granule_calls = "\n".join(lines)
    return f"""
// _222_mpegaudio stand-in: cascades of small tight filter loops.
fn window_samples(frame, n) {{
    var acc = 0;
    var i = 0;
    while (i < n) {{
        var s = (frame * 5 + i * 3) % 64;
        if (s < 32) {{ acc = acc + s; }}
        i = i + 1;
    }}
    return acc;
}}

fn subband_filter(frame, band, n) {{
    var acc = 0;
    var i = 0;
    while (i < n) {{
        var c = (i * 7 + band * 11 + frame) % 16;
        if (c < 8) {{
            acc = acc + c;
        }} else {{
            acc = acc - 1;
        }}
        i = i + 1;
    }}
    return acc;
}}

fn write_pcm(frame, n) {{
    var i = 0;
    while (i < n) {{
        setmem(30000 + (frame * n + i) % 4096, (frame + i) % 256);
        i = i + 1;
    }}
    return n;
}}

fn sync_header(frame) {{
    var h = frame * 419;
    if (h % 2 == 0) {{ h = h + 3; }}
    if (h % 3 == 1) {{ h = h - 1; }}
    return h;
}}

fn decode_granule(granule, frames) {{
    var pcm = 0;
    var frame = 0;
    while (frame < frames) {{
        var f = granule * frames + frame;
        pcm = pcm + sync_header(f);
        pcm = pcm + window_samples(f, {window_iters});
        if (f % 4 == 3) {{
            // Long-block frame: one 6x filter pass.
            pcm = pcm + subband_filter(f, 0, {filter_iters} * 6);
        }} else {{
            pcm = pcm + subband_filter(f, 0, {filter_iters});
            pcm = pcm + subband_filter(f, 1, {filter_iters});
        }}
        pcm = pcm + write_pcm(f, {output_iters});
        frame = frame + 1;
    }}
    return pcm;
}}

fn seek_stream(v) {{
    var s = v;
    if (s % 2 == 0) {{ s = s + 17; }}
    if (s % 3 == 2) {{ s = s - 6; }}
    if (s % 5 == 1) {{ s = s * 2; }}
    if (s > 100000) {{ s = s % 99991; }}
    return s % 100;
}}

fn main() {{
    var pcm = 0;
{granule_calls}
    return pcm;
}}
"""


WORKLOAD = Workload(name="mpegaudio", mirrors="_222_mpegaudio", source=_source, seed=222)
