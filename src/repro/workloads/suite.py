"""The benchmark suite: registry, execution, and on-disk trace caching.

Running a workload through the interpreter costs seconds; the suite
caches both traces on disk keyed by the workload's content fingerprint,
so experiment sweeps and benches pay the interpretation cost once.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import GLOBAL_METRICS
from repro.profiles.callloop import CallLoopTrace
from repro.profiles.io import (
    ensure_codes_sidecar,
    mmap_enabled,
    read_trace_binary,
    write_trace_binary,
)
from repro.profiles.trace import BranchTrace
from repro.workloads.base import Workload
from repro.workloads.compress_wl import WORKLOAD as COMPRESS
from repro.workloads.jess_wl import WORKLOAD as JESS
from repro.workloads.raytrace_wl import WORKLOAD as RAYTRACE
from repro.workloads.db_wl import WORKLOAD as DB
from repro.workloads.javac_wl import WORKLOAD as JAVAC
from repro.workloads.mpegaudio_wl import WORKLOAD as MPEGAUDIO
from repro.workloads.jack_wl import WORKLOAD as JACK
from repro.workloads.jlex_wl import WORKLOAD as JLEX

#: The eight benchmarks, in the paper's Table 1 order.
ALL_WORKLOADS: Tuple[Workload, ...] = (
    COMPRESS,
    JESS,
    RAYTRACE,
    DB,
    JAVAC,
    MPEGAUDIO,
    JACK,
    JLEX,
)

WORKLOADS_BY_NAME: Dict[str, Workload] = {wl.name: wl for wl in ALL_WORKLOADS}

#: Default on-disk cache location (overridable via REPRO_TRACE_CACHE).
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_TRACE_CACHE", Path(__file__).resolve().parents[3] / ".trace_cache")
)


def workload(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> List[str]:
    """All workload names in suite order."""
    return [wl.name for wl in ALL_WORKLOADS]


def load_traces(
    name: str,
    scale: float = 1.0,
    cache_dir: Optional[Path] = None,
    mmap: Optional[bool] = None,
) -> Tuple[BranchTrace, CallLoopTrace]:
    """Get (branch trace, call-loop trace) for a workload, using the cache.

    On a cache miss the workload is compiled, interpreted, and both
    traces are written to ``cache_dir`` for next time, together with a
    ``.bcodes`` dense-code sidecar (see ``docs/formats.md``).  On a hit
    the sidecar is adopted (regenerated transparently when missing or
    stale), so callers never pay the per-process ``np.unique`` pass.

    With ``mmap`` (default: on unless ``REPRO_MMAP=0``), the branch
    trace and sidecar are returned as read-only ``np.memmap`` views over
    the cache files — concurrent sweep workers then share one physical
    copy of each trace through the OS page cache instead of N heap
    copies.
    """
    wl = workload(name)
    cache_dir = DEFAULT_CACHE_DIR if cache_dir is None else Path(cache_dir)
    if mmap is None:
        mmap = mmap_enabled()
    fingerprint = wl.fingerprint(scale)
    branch_path = cache_dir / f"{name}-{fingerprint}.btrace"
    callloop_path = cache_dir / f"{name}-{fingerprint}.cloop"
    if branch_path.exists() and callloop_path.exists():
        try:
            branch_trace = read_trace_binary(branch_path, mmap=mmap)
            call_loop = CallLoopTrace.load(callloop_path)
            GLOBAL_METRICS.counter("io.trace_cache_hits").inc()
            ensure_codes_sidecar(branch_trace, branch_path, mmap=mmap)
            return branch_trace, call_loop
        except ValueError:
            # A corrupt cache entry (TraceFormatError or a torn .cloop) is
            # a miss: re-run the workload and overwrite the bad files.
            pass
    GLOBAL_METRICS.counter("io.trace_cache_misses").inc()
    with GLOBAL_METRICS.time("io.workload_run_seconds"):
        branch_trace, call_loop = wl.run(scale)
    cache_dir.mkdir(parents=True, exist_ok=True)
    write_trace_binary(branch_trace, branch_path)
    call_loop.save(callloop_path)
    ensure_codes_sidecar(branch_trace, branch_path, mmap=False)
    return branch_trace, call_loop


def load_suite(
    scale: float = 1.0,
    cache_dir: Optional[Path] = None,
    names: Optional[List[str]] = None,
    mmap: Optional[bool] = None,
) -> Dict[str, Tuple[BranchTrace, CallLoopTrace]]:
    """Load (running if needed) every workload's traces."""
    selected = names if names is not None else workload_names()
    return {
        name: load_traces(name, scale=scale, cache_dir=cache_dir, mmap=mmap)
        for name in selected
    }
