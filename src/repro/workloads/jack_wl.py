"""``_228_jack`` stand-in.

jack is a parser generator that famously processes its own grammar 16
times.  Execution is a repeated pipeline of lexing loops, recursive
grammar walks, and table-construction loops, separated by substantial
per-pass bookkeeping; coverage *drops* at high MPL (13.6% at 100K)
because no single construct spans a large fraction of the run.

Structure here: 16 *unrolled* top-level pass calls (no loop spans the
run) with irregular per-pass reporting between them; within a pass, the
lex / expand / table loops are each a few hundred elements, so nothing
qualifies once the MPL exceeds a single pass's largest loop — except
one oversized "self-test" pass that keeps a sliver of coverage.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    passes = 16
    stream = scaled(240, scale, minimum=24)
    productions = scaled(26, scale, minimum=5)
    table_rows = scaled(140, scale, minimum=12)
    pass_calls = "\n".join(
        f"    total = total + run_pass({p}, {4 if p == 15 else 1});\n"
        f"    total = total + report({p}, total);"
        for p in range(passes)
    )
    return f"""
// _228_jack stand-in: 16 repeated generator passes.
fn lex(n, pass_id) {{
    var toks = 0;
    var i = 0;
    while (i < n) {{
        var c = (i * 13 + pass_id * 5) % 9;
        if (c < 3) {{
            toks = toks + 1;
        }} else if (c == 7) {{
            toks = toks + 3;
        }}
        i = i + 1;
    }}
    return toks;
}}

fn expand(prod, depth) {{
    // Recursive production expansion.
    if (depth <= 0) {{
        return prod % 7;
    }}
    var v = prod;
    if (v % 2 == 0) {{
        v = v + expand(v / 2 + 1, depth - 1);
    }}
    if (v % 3 == 0) {{
        v = v + expand(v / 3 + 2, depth - 1);
    }}
    return v + 1;
}}

fn build_tables(rows, pass_id) {{
    var filled = 0;
    var r = 0;
    while (r < rows) {{
        var slot = (r * 31 + pass_id * 7) % 19;
        if (slot < 9) {{
            setmem(40000 + slot, r);
            filled = filled + 1;
        }}
        r = r + 1;
    }}
    return filled;
}}

fn run_pass(pass_id, factor) {{
    var total = lex({stream} * factor, pass_id);
    var p = 0;
    while (p < {productions}) {{
        total = total + expand(p + pass_id, 3 + p % 3);
        p = p + 1;
    }}
    total = total + build_tables({table_rows} * factor, pass_id);
    return total;
}}

fn report(pass_id, v) {{
    var x = v + pass_id;
    if (x % 2 == 0) {{ x = x + 13; }}
    if (x % 3 == 1) {{ x = x - 5; }}
    if (x % 5 == 2) {{ x = x * 2; }}
    if (x % 7 == 4) {{ x = x + pass_id; }}
    if (x % 11 == 6) {{ x = x - 1; }}
    if (x % 13 == 0) {{ x = x + 2; }}
    if (x % 17 == 8) {{ x = x + 3; }}
    if (x % 19 == 1) {{ x = x - 7; }}
    if (x > 100000) {{ x = x % 99991; }}
    return x % 1000;
}}

fn main() {{
    var total = 0;
{pass_calls}
    return total;
}}
"""


WORKLOAD = Workload(name="jack", mirrors="_228_jack", source=_source, seed=228)
