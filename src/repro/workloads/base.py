"""Workload infrastructure.

Each workload is a MiniLang program whose *phase-relevant* structure
mirrors one of the paper's benchmarks (SPECjvm98 size 10 + JLex): the
mix of tight loops, nested loops, method-invocation runs, and recursion
that gives rise to its Table 1 characteristics.  A workload is scale-
parameterized so the suite can produce short traces for CI and longer
ones for the full experiment runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.profiles.callloop import CallLoopTrace
from repro.profiles.trace import BranchTrace
from repro.vm.compiler import compile_source
from repro.vm.interpreter import Interpreter
from repro.vm.tracing import CollectingSink


@dataclass(frozen=True)
class Workload:
    """One benchmark: a name plus a scale-parameterized MiniLang source."""

    name: str
    #: Which paper benchmark this workload's phase structure mirrors.
    mirrors: str
    #: scale -> MiniLang source text.
    source: Callable[[float], str]
    #: Seed for the program's ``rnd()`` stream.
    seed: int = 0x5EED

    def program_source(self, scale: float = 1.0) -> str:
        """The MiniLang source at ``scale``."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.source(scale)

    def fingerprint(self, scale: float) -> str:
        """Content hash identifying (source, scale, seed) — the cache key."""
        digest = hashlib.sha256()
        digest.update(self.program_source(scale).encode("utf-8"))
        digest.update(f"|seed={self.seed}|scale={scale}".encode("utf-8"))
        return digest.hexdigest()[:16]

    def run(self, scale: float = 1.0) -> Tuple[BranchTrace, CallLoopTrace]:
        """Compile and execute the workload, collecting both traces."""
        program = compile_source(self.program_source(scale), name=self.name)
        sink = CollectingSink()
        Interpreter(max_call_depth=10_000).run(program, sink=sink, seed=self.seed)
        return sink.branch_trace(self.name), sink.call_loop_trace(self.name)


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer knob, flooring at ``minimum``."""
    return max(minimum, round(value * scale))
