"""``_205_raytrace`` stand-in.

Raytrace renders a scene: per-tile loops of per-pixel work where each
pixel traces a recursive ray tree (reflection/refraction bounces).
Table 1(a) shows the signature: a large number of recursion roots
(6,811) relative to the other benchmarks; Table 1(b) shows phase counts
shrinking from 1448 (MPL 1K) to 17 (100K) with coverage falling to
≈43% at the largest MPL.

Structure here: the image is rendered as *unrolled* top-level tile
calls (no loop spans the run); each tile is a scanline loop over a
pixel loop; every pixel call traces a recursive ray tree.  Two tiles
cover a reflective region and are 4x taller, so a few big phases
survive at large MPL.
"""

from __future__ import annotations

from repro.workloads.base import Workload, scaled


def _source(scale: float) -> str:
    tiles = 8
    # Height x width is quadratic; scale each by sqrt(scale).
    dimension = scale ** 0.5
    tile_height = scaled(9, dimension, minimum=3)
    width = scaled(24, dimension, minimum=6)
    tile_calls = "\n".join(
        f"    image = image + render_tile({t}, {tile_height * (4 if t in (2, 5) else 1)});\n"
        f"    image = image + flush_tile({t}, image);"
        for t in range(tiles)
    )
    return f"""
// _205_raytrace stand-in: recursive per-pixel ray trees over tiles.
fn intersect(x, y, depth) {{
    var t = (x * 13 + y * 7 + depth * 3) % 17;
    if (t < 5) {{ return 0; }}
    if (t < 11) {{ return 1; }}
    return 2;
}}

fn shade(hit, x, y) {{
    var c = hit * 40 + (x + y) % 23;
    if (c % 2 == 0) {{ c = c + 9; }}
    if (c % 7 < 3) {{ c = c * 2; }}
    return c % 256;
}}

fn trace(x, y, depth) {{
    // Recursive ray tree: every top-level call is a recursion root.
    var hit = intersect(x, y, depth);
    if (hit == 0) {{
        return 0;
    }}
    var color = shade(hit, x, y);
    if (depth > 0) {{
        if (hit == 1) {{
            color = color + trace(x + 1, y, depth - 1) / 2;
        }} else {{
            color = color + trace(x + 1, y, depth - 1) / 2;
            color = color + trace(x, y + 1, depth - 1) / 4;
        }}
    }}
    return color;
}}

fn render_tile(tile, height) {{
    var acc = 0;
    var y = 0;
    while (y < height) {{
        var x = 0;
        while (x < {width}) {{
            acc = acc + trace(x + tile * {width}, y + tile * 7, 2 + (x * y) % 3);
            x = x + 1;
        }}
        y = y + 1;
    }}
    return acc;
}}

fn flush_tile(tile, acc) {{
    var v = acc + tile;
    if (v % 2 == 0) {{ v = v + 5; }}
    if (v % 3 == 1) {{ v = v - 2; }}
    if (v % 5 == 4) {{ v = v * 2; }}
    if (v % 7 == 0) {{ v = v + tile; }}
    if (v > 100000) {{ v = v % 99991; }}
    setmem(20000 + tile, v);
    return v % 500;
}}

fn main() {{
    var image = 0;
{tile_calls}
    return image;
}}
"""


WORKLOAD = Workload(name="raytrace", mirrors="_205_raytrace", source=_source, seed=205)
