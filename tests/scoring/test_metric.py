"""Combined accuracy-score tests."""

import numpy as np
import pytest

from repro.scoring.metric import AccuracyScore, score_phases, score_states
from repro.scoring.states import states_from_phases, states_from_string


class TestScoreComposition:
    def test_weights(self):
        score = AccuracyScore(
            correlation=0.8,
            sensitivity=0.5,
            false_positives=0.25,
            num_detected_phases=2,
            num_baseline_phases=2,
            num_matched_phases=1,
        )
        assert score.score == pytest.approx(0.8 / 2 + 0.5 / 4 + 0.75 / 4)

    def test_perfect(self):
        baseline = states_from_phases([(10, 60)], 100)
        result = score_states(baseline.copy(), baseline)
        assert result.score == pytest.approx(1.0)
        assert result.correlation == 1.0
        assert result.sensitivity == 1.0
        assert result.false_positives == 0.0

    def test_all_transition_detector(self):
        baseline = states_from_phases([(10, 60)], 100)
        result = score_states(np.zeros(100, dtype=bool), baseline)
        assert result.correlation == pytest.approx(0.5)
        assert result.sensitivity == 0.0
        assert result.false_positives == 0.0
        assert result.score == pytest.approx(0.5 / 2 + 0 + 0.25)

    def test_all_phase_detector(self):
        baseline = states_from_phases([(10, 60)], 100)
        result = score_states(np.ones(100, dtype=bool), baseline)
        # One detected phase [0,100): starts before the baseline phase.
        assert result.sensitivity == 0.0
        assert result.false_positives == 1.0

    def test_late_detector_scores_well(self):
        baseline = states_from_phases([(10, 60)], 100)
        detected = states_from_phases([(20, 65)], 100)
        result = score_states(detected, baseline)
        assert result.sensitivity == 1.0
        assert result.false_positives == 0.0
        assert 0.8 < result.score < 1.0

    def test_empty_traces(self):
        result = score_states(np.array([], dtype=bool), np.array([], dtype=bool))
        assert result.score == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_states(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestExplicitPhases:
    def test_score_phases_matches_score_states(self):
        detected = [(20, 65)]
        baseline = [(10, 60)]
        from_phases = score_phases(detected, baseline, 100)
        from_states = score_states(
            states_from_phases(detected, 100), states_from_phases(baseline, 100)
        )
        assert from_phases.score == pytest.approx(from_states.score)

    def test_override_detected_phases(self):
        # Figure-8 style: states say one thing, corrected intervals another.
        baseline_states = states_from_phases([(10, 60)], 100)
        detected_states = states_from_phases([(30, 70)], 100)
        corrected = [(10, 70)]
        plain = score_states(detected_states, baseline_states)
        overridden = score_states(
            states_from_phases(corrected, 100),
            baseline_states,
            detected_phases=corrected,
        )
        assert overridden.correlation > plain.correlation

    def test_str_contains_components(self):
        result = score_states(
            states_from_string("TTPPT"), states_from_string("TTPPT")
        )
        text = str(result)
        assert "corr=" in text and "sens=" in text and "fp=" in text
