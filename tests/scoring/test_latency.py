"""Detection-latency measurement tests."""

import pytest

from repro.scoring.latency import measure_latency
from repro.core import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.profiles.synthetic import SyntheticTraceBuilder

N = 1_000


class TestMeasureLatency:
    def test_exact_match_zero_lateness(self):
        report = measure_latency([(100, 200)], [(100, 200)], N)
        assert report.start_lateness == [0]
        assert report.end_lateness == [0]
        assert report.mean_start_lateness == 0.0

    def test_late_detection_measured(self):
        report = measure_latency([(130, 215)], [(100, 200)], N)
        assert report.start_lateness == [30]
        assert report.end_lateness == [15]

    def test_only_matched_phases_counted(self):
        report = measure_latency(
            [(130, 215), (600, 700)], [(100, 200)], N
        )
        assert report.num_matched == 1
        assert report.num_baseline_phases == 1
        assert len(report.start_lateness) == 1

    def test_no_matches(self):
        report = measure_latency([(5, 10)], [(100, 200)], N)
        assert report.num_matched == 0
        assert report.mean_start_lateness == 0.0
        assert report.max_start_lateness == 0

    def test_multiple_matches_averaged(self):
        report = measure_latency(
            [(110, 210), (450, 520)], [(100, 200), (400, 500)], N
        )
        assert report.start_lateness == [10, 50]
        assert report.mean_start_lateness == pytest.approx(30.0)
        assert report.max_start_lateness == 50


class TestLatencyOnRealDetection:
    def _trace(self):
        builder = SyntheticTraceBuilder(seed=51)
        for _ in range(4):
            builder.add_transition(250)
            builder.add_phase(2_000, body_size=10)
        builder.add_transition(250)
        return builder.build()

    def test_lateness_grows_with_window_size(self):
        trace, specs = self._trace()
        truth = [(s.start, s.end) for s in specs]

        def mean_lateness(cw):
            config = DetectorConfig(cw_size=cw, threshold=0.6)
            result = run_detector(trace, config)
            report = measure_latency(result.phases(), truth, len(trace))
            assert report.num_matched >= 3
            return report.mean_start_lateness

        small = mean_lateness(50)
        large = mean_lateness(400)
        # Detection waits for the windows to fill with phase content:
        # lateness scales with CW+TW.
        assert large > small
        assert small >= 50  # at least one window's worth

    def test_anchor_correction_removes_start_lateness(self):
        trace, specs = self._trace()
        truth = [(s.start, s.end) for s in specs]
        config = DetectorConfig(
            cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )
        result = run_detector(trace, config)
        plain = measure_latency(result.phases(), truth, len(trace))
        corrected = measure_latency(result.corrected_phases(), truth, len(trace))
        assert corrected.num_matched >= plain.num_matched - 1
        assert corrected.mean_start_lateness < plain.mean_start_lateness
        assert corrected.mean_start_lateness <= 5
