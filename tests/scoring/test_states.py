"""State-sequence utility tests."""

import numpy as np
import pytest

from repro.scoring.states import (
    phases_from_states,
    state_string,
    states_from_phases,
)
from repro.scoring.states import states_from_string


class TestPhasesFromStates:
    def test_empty(self):
        assert phases_from_states(np.array([], dtype=bool)) == []

    def test_all_transition(self):
        assert phases_from_states(np.zeros(5, dtype=bool)) == []

    def test_all_phase(self):
        assert phases_from_states(np.ones(5, dtype=bool)) == [(0, 5)]

    def test_multiple_runs(self):
        states = states_from_string("TTPPPTTPPT")
        assert phases_from_states(states) == [(2, 5), (7, 9)]

    def test_boundary_runs(self):
        states = states_from_string("PPTTP")
        assert phases_from_states(states) == [(0, 2), (4, 5)]

    def test_single_element_phase(self):
        assert phases_from_states(states_from_string("TPT")) == [(1, 2)]


class TestStatesFromPhases:
    def test_round_trip(self):
        phases = [(2, 5), (7, 9)]
        states = states_from_phases(phases, 10)
        assert phases_from_states(states) == phases

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            states_from_phases([(5, 20)], 10)
        with pytest.raises(ValueError):
            states_from_phases([(-1, 3)], 10)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            states_from_phases([(5, 2)], 10)

    def test_empty_interval_allowed(self):
        states = states_from_phases([(3, 3)], 5)
        assert not states.any()


class TestStrings:
    def test_state_string(self):
        assert state_string(states_from_string("TPPT")) == "TPPT"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            states_from_string("TPX")

    def test_parse_case_insensitive(self):
        assert state_string(states_from_string("tpp")) == "TPP"
