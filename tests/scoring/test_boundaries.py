"""Boundary-matching tests: the three constraints of Section 3.2."""

import pytest

from repro.scoring.boundaries import match_phases

N = 1_000  # trace length used throughout


class TestMatchingConstraints:
    def test_exact_match(self):
        matching = match_phases([(100, 200)], [(100, 200)], N)
        assert matching.pairs == ((0, 0),)
        assert matching.sensitivity == 1.0
        assert matching.false_positives == 0.0

    def test_late_detection_matches(self):
        # Start inside the baseline phase; end after it, before the next.
        matching = match_phases([(120, 230)], [(100, 200), (400, 500)], N)
        assert matching.pairs == ((0, 0),)

    def test_start_before_baseline_start_fails(self):
        matching = match_phases([(90, 210)], [(100, 200)], N)
        assert matching.pairs == ()

    def test_start_at_baseline_end_fails(self):
        matching = match_phases([(200, 250)], [(100, 200)], N)
        assert matching.pairs == ()

    def test_end_before_baseline_end_fails(self):
        matching = match_phases([(120, 190)], [(100, 200)], N)
        assert matching.pairs == ()

    def test_end_into_next_phase_fails(self):
        matching = match_phases([(120, 450)], [(100, 200), (400, 500)], N)
        assert matching.pairs == ()

    def test_end_exactly_at_next_start_fails(self):
        matching = match_phases([(120, 400)], [(100, 200), (400, 500)], N)
        assert matching.pairs == ()

    def test_last_phase_end_may_reach_trace_end(self):
        matching = match_phases([(120, N)], [(100, 200)], N)
        assert matching.pairs == ((0, 0),)

    def test_at_most_one_candidate_per_baseline_phase(self):
        # With disjoint detected phases, a second phase that qualifies
        # for the same baseline phase cannot exist: it would have to
        # start before B.end but after the first one's end (>= B.end).
        # Constraint 3's tie-break is therefore vacuous for valid input;
        # the closest single candidate simply matches.
        matching = match_phases(
            [(110, 210), (220, 390)], [(100, 200), (400, 500)], N
        )
        assert matching.pairs == ((0, 0),)
        assert matching.num_matched_boundaries == 2

    def test_one_detected_phase_matches_at_most_one_baseline(self):
        matching = match_phases([(120, 230)], [(100, 200), (225, 300)], N)
        # end (230) is inside the next phase [225, 300): no match.
        assert matching.pairs == ()

    def test_multiple_independent_matches(self):
        matching = match_phases(
            [(110, 220), (420, 520)], [(100, 200), (400, 500)], N
        )
        assert matching.pairs == ((0, 0), (1, 1))
        assert matching.sensitivity == 1.0
        assert matching.false_positives == 0.0


class TestRates:
    def test_sensitivity_counts_boundaries(self):
        matching = match_phases([(110, 220)], [(100, 200), (400, 500)], N)
        assert matching.num_baseline_boundaries == 4
        assert matching.num_matched_boundaries == 2
        assert matching.sensitivity == 0.5

    def test_false_positive_rate(self):
        matching = match_phases([(110, 220), (600, 700)], [(100, 200)], N)
        assert matching.num_detected_boundaries == 4
        assert matching.false_positives == 0.5

    def test_no_baseline_phases(self):
        matching = match_phases([(10, 20)], [], N)
        assert matching.sensitivity == 1.0
        assert matching.false_positives == 1.0

    def test_no_detected_phases(self):
        matching = match_phases([], [(10, 20)], N)
        assert matching.sensitivity == 0.0
        assert matching.false_positives == 0.0


class TestValidation:
    def test_unsorted_detected_rejected(self):
        with pytest.raises(ValueError):
            match_phases([(50, 80), (10, 20)], [(1, 5)], N)

    def test_overlapping_baseline_rejected(self):
        with pytest.raises(ValueError):
            match_phases([(1, 2)], [(10, 30), (20, 40)], N)

    def test_malformed_interval_rejected(self):
        with pytest.raises(ValueError):
            match_phases([(30, 10)], [], N)
