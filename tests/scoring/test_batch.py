"""Unit tests for the batched scoring path (score_states_batch)."""

import numpy as np
import pytest

from repro.scoring.boundaries import BaselinePhaseIndex, match_phases
from repro.scoring.metric import score_states, score_states_batch
from repro.scoring.states import states_from_phases


class TestBaselinePhaseIndex:
    def test_matches_scalar_matcher(self):
        baseline = [(10, 40), (60, 90)]
        detected = [(12, 45), (50, 55), (65, 95), (96, 99)]
        index = BaselinePhaseIndex(baseline, 100)
        assert index.match(detected) == match_phases(detected, baseline, 100)
        assert index.match(detected).pairs == ((0, 0), (2, 1))

    def test_last_phase_upper_bound(self):
        # Past the last baseline phase, qualification extends to the
        # trace end (num_elements + 1 exclusive), as in match_phases.
        baseline = [(10, 50)]
        detected = [(20, 100)]
        index = BaselinePhaseIndex(baseline, 100)
        assert index.match(detected).pairs == ((0, 0),)

    def test_malformed_baseline_rejected(self):
        with pytest.raises(ValueError, match=r"baseline phase \(30, 20\) is malformed"):
            BaselinePhaseIndex([(30, 20)], 100)

    def test_overlapping_baseline_rejected(self):
        with pytest.raises(ValueError, match="overlap or are unsorted"):
            BaselinePhaseIndex([(0, 30), (20, 50)], 100)

    def test_malformed_detected_rejected(self):
        index = BaselinePhaseIndex([(0, 10)], 100)
        with pytest.raises(ValueError, match=r"detected phase \(9, 3\) is malformed"):
            index.match([(9, 3)])

    def test_empty_sides(self):
        index = BaselinePhaseIndex([], 100)
        assert index.match([(1, 2)]).pairs == ()
        full = BaselinePhaseIndex([(0, 10)], 100)
        assert full.match([]) == match_phases([], [(0, 10)], 100)


class TestScoreStatesBatch:
    def test_grid_shape(self):
        matrix = np.zeros((3, 20), dtype=bool)
        grid = score_states_batch(matrix, [np.zeros(20, dtype=bool)] * 2)
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)

    def test_matches_scalar_loop(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((4, 200)) < 0.5
        baselines = [rng.random(200) < 0.5 for _ in range(3)]
        grid = score_states_batch(matrix, baselines)
        for lane in range(4):
            for column, base in enumerate(baselines):
                scalar = score_states(matrix[lane], base)
                assert grid[lane][column] == scalar

    def test_length_mismatch_rejected(self):
        # Same error message as the scalar scorer's shape check.
        with pytest.raises(ValueError, match="state arrays differ in length"):
            score_states_batch(
                np.zeros((2, 5), dtype=bool), [np.zeros(6, dtype=bool)]
            )

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            score_states_batch(np.zeros(5, dtype=bool), [np.zeros(5, dtype=bool)])

    def test_override_count_mismatch_rejected(self):
        matrix = np.zeros((2, 5), dtype=bool)
        with pytest.raises(ValueError, match="detected_phases"):
            score_states_batch(
                matrix, [np.zeros(5, dtype=bool)], detected_phases=[None]
            )
        with pytest.raises(ValueError, match="baseline_phases"):
            score_states_batch(
                matrix, [np.zeros(5, dtype=bool)], baseline_phases=[None, None]
            )

    def test_empty_matrix(self):
        grid = score_states_batch(
            np.zeros((2, 0), dtype=bool), [np.zeros(0, dtype=bool)]
        )
        assert grid[0][0].score == 1.0
        assert grid[1][0].num_baseline_phases == 0

    def test_baseline_phase_override(self):
        matrix = np.vstack([states_from_phases([(30, 70)], 100)])
        base_states = states_from_phases([(10, 60)], 100)
        override = [[(10, 60)]]
        grid = score_states_batch(
            matrix, [base_states], baseline_phases=override
        )
        scalar = score_states(
            matrix[0], base_states, baseline_phases=override[0]
        )
        assert grid[0][0] == scalar
