"""Repetition-tree construction tests."""

import pytest

from repro.baseline.tree import build_repetition_tree, count_nodes
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind

ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


def trace(*events, num_branches=0):
    return CallLoopTrace(
        [CallLoopEvent(k, i, t) for k, i, t in events], num_branches=num_branches
    )


class TestTreeShape:
    def test_single_method(self):
        roots = build_repetition_tree(trace((ME, 0, 0), (MX, 0, 10)))
        assert len(roots) == 1
        assert roots[0].static_id == ("m", 0)
        assert (roots[0].start, roots[0].end) == (0, 10)

    def test_nesting(self):
        roots = build_repetition_tree(
            trace((ME, 0, 0), (LE, 0, 1), (ME, 1, 2), (MX, 1, 5), (LX, 0, 8), (MX, 0, 9))
        )
        main = roots[0]
        assert len(main.children) == 1
        loop = main.children[0]
        assert loop.static_id == ("l", 0)
        assert loop.children[0].static_id == ("m", 1)
        assert count_nodes(roots) == 3

    def test_sibling_order_preserved(self):
        roots = build_repetition_tree(
            trace(
                (ME, 0, 0),
                (LE, 0, 1), (LX, 0, 4),
                (LE, 1, 6), (LX, 1, 9),
                (MX, 0, 10),
            )
        )
        children = roots[0].children
        assert [c.static_id for c in children] == [("l", 0), ("l", 1)]
        assert children[0].end <= children[1].start

    def test_mismatched_exit_raises(self):
        with pytest.raises(ValueError):
            build_repetition_tree(trace((ME, 0, 0), (LE, 0, 1), (MX, 0, 5)))

    def test_exit_on_empty_stack_raises(self):
        with pytest.raises(ValueError):
            build_repetition_tree(trace((MX, 0, 5)))

    def test_truncated_trace_closed_at_end(self):
        roots = build_repetition_tree(
            trace((ME, 0, 0), (LE, 0, 2), num_branches=42)
        )
        assert roots[0].end == 42
        assert roots[0].children[0].end == 42


class TestRecursionMarking:
    def test_direct_recursion_marks_outermost(self):
        roots = build_repetition_tree(
            trace(
                (ME, 0, 0),
                (ME, 1, 1), (ME, 1, 2), (MX, 1, 3), (MX, 1, 4),
                (MX, 0, 5),
            )
        )
        outer_f = roots[0].children[0]
        inner_f = outer_f.children[0]
        assert outer_f.is_recursion_root
        assert not inner_f.is_recursion_root

    def test_mutual_recursion(self):
        # main -> foo -> bar -> foo
        roots = build_repetition_tree(
            trace(
                (ME, 0, 0),
                (ME, 1, 1),
                (ME, 2, 2),
                (ME, 1, 3),
                (MX, 1, 4),
                (MX, 2, 5),
                (MX, 1, 6),
                (MX, 0, 7),
            )
        )
        foo = roots[0].children[0]
        assert foo.is_recursion_root
        bar = foo.children[0]
        assert not bar.is_recursion_root

    def test_non_recursive_not_marked(self):
        roots = build_repetition_tree(
            trace((ME, 0, 0), (ME, 1, 1), (MX, 1, 2), (ME, 1, 3), (MX, 1, 4), (MX, 0, 5))
        )
        for child in roots[0].children:
            assert not child.is_recursion_root

    def test_walk_preorder(self):
        roots = build_repetition_tree(
            trace((ME, 0, 0), (LE, 0, 1), (LX, 0, 2), (LE, 1, 3), (LX, 1, 4), (MX, 0, 5))
        )
        ids = [n.static_id for n in roots[0].walk()]
        assert ids == [("m", 0), ("l", 0), ("l", 1)]
