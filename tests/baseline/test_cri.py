"""CRI extraction and adjacency-merging tests."""

from repro.baseline.cri import CRIKind, RepetitiveInstance, extract_cris, merge_adjacent
from repro.baseline.tree import build_repetition_tree
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind

ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


def cris_for(*events, num_branches=0):
    trace = CallLoopTrace(
        [CallLoopEvent(k, i, t) for k, i, t in events], num_branches=num_branches
    )
    return extract_cris(build_repetition_tree(trace))


def cri(static_id, start, end, kind=CRIKind.LOOP, count=1, children=()):
    return RepetitiveInstance(
        static_id=static_id, start=start, end=end, kind=kind, count=count,
        children=tuple(children),
    )


class TestMergeAdjacent:
    def test_distance_one_merges(self):
        merged = merge_adjacent([cri(("l", 0), 0, 10), cri(("l", 0), 11, 20)])
        assert len(merged) == 1
        assert (merged[0].start, merged[0].end) == (0, 20)
        assert merged[0].kind is CRIKind.MERGED_LOOP
        assert merged[0].count == 2

    def test_distance_zero_merges(self):
        merged = merge_adjacent([cri(("l", 0), 0, 10), cri(("l", 0), 10, 20)])
        assert len(merged) == 1

    def test_distance_two_does_not_merge(self):
        merged = merge_adjacent([cri(("l", 0), 0, 10), cri(("l", 0), 12, 20)])
        assert len(merged) == 2

    def test_different_ids_do_not_merge(self):
        merged = merge_adjacent([cri(("l", 0), 0, 10), cri(("l", 1), 11, 20)])
        assert len(merged) == 2

    def test_run_of_many(self):
        run = [cri(("m", 3), i * 10, i * 10 + 9, kind=CRIKind.METHOD) for i in range(5)]
        merged = merge_adjacent(run)
        assert len(merged) == 1
        assert merged[0].count == 5
        assert merged[0].kind is CRIKind.MERGED_METHOD

    def test_interleaved_ids_break_runs(self):
        items = [
            cri(("m", 0), 0, 5, kind=CRIKind.METHOD),
            cri(("m", 1), 5, 10, kind=CRIKind.METHOD),
            cri(("m", 0), 10, 15, kind=CRIKind.METHOD),
        ]
        assert len(merge_adjacent(items)) == 3

    def test_merged_children_are_next_level(self):
        inner_a = cri(("l", 1), 1, 9)
        inner_b = cri(("l", 1), 12, 19)
        left = cri(("l", 0), 0, 10, children=[inner_a])
        right = cri(("l", 0), 11, 20, children=[inner_b])
        merged = merge_adjacent([left, right])
        assert len(merged) == 1
        # Children are the members' own children, not the members.
        kinds = [c.static_id for c in merged[0].children]
        assert kinds == [("l", 1), ("l", 1)]


class TestRepetitiveness:
    def test_loop_is_repetitive(self):
        assert cri(("l", 0), 0, 5, kind=CRIKind.LOOP).is_repetitive()

    def test_single_method_not_repetitive(self):
        assert not cri(("m", 0), 0, 5, kind=CRIKind.METHOD).is_repetitive()

    def test_recursion_is_repetitive(self):
        assert cri(("m", 0), 0, 5, kind=CRIKind.RECURSION).is_repetitive()

    def test_merged_method_needs_two(self):
        single = cri(("m", 0), 0, 5, kind=CRIKind.MERGED_METHOD, count=1)
        double = cri(("m", 0), 0, 5, kind=CRIKind.MERGED_METHOD, count=2)
        assert not single.is_repetitive()
        assert double.is_repetitive()


class TestExtractFromTrace:
    def test_loop_execution_becomes_loop_cri(self):
        cris = cris_for((ME, 0, 0), (LE, 0, 1), (LX, 0, 9), (MX, 0, 10))
        main = cris[0]
        assert main.kind is CRIKind.METHOD
        assert main.children[0].kind is CRIKind.LOOP

    def test_recursion_root_becomes_recursion_cri(self):
        cris = cris_for(
            (ME, 0, 0), (ME, 1, 1), (ME, 1, 2), (MX, 1, 3), (MX, 1, 4), (MX, 0, 5)
        )
        root = cris[0].children[0]
        assert root.kind is CRIKind.RECURSION

    def test_back_to_back_calls_merge(self):
        cris = cris_for(
            (ME, 0, 0),
            (ME, 1, 1), (MX, 1, 4),
            (ME, 1, 5), (MX, 1, 8),
            (MX, 0, 9),
        )
        merged = cris[0].children[0]
        assert merged.kind is CRIKind.MERGED_METHOD
        assert merged.count == 2
        assert merged.is_repetitive()
