"""Oracle (baseline solution) tests against hand-built call-loop traces
and real MiniLang programs."""

import numpy as np
import pytest

from repro.baseline.oracle import solve_baseline
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind

ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


def trace(*events, num_branches):
    return CallLoopTrace(
        [CallLoopEvent(k, i, t) for k, i, t in events], num_branches=num_branches
    )


class TestMplFiltering:
    def test_loop_below_mpl_rejected(self):
        t = trace((ME, 0, 0), (LE, 0, 5), (LX, 0, 55), (MX, 0, 60), num_branches=60)
        assert solve_baseline(t, mpl=51).num_phases == 0
        assert solve_baseline(t, mpl=50).num_phases == 1

    def test_mpl_must_be_positive(self):
        t = trace((ME, 0, 0), (MX, 0, 1), num_branches=1)
        with pytest.raises(ValueError):
            solve_baseline(t, mpl=0)

    def test_single_method_invocation_never_a_phase(self):
        t = trace((ME, 0, 0), (ME, 1, 5), (MX, 1, 500), (MX, 0, 505), num_branches=505)
        assert solve_baseline(t, mpl=10).num_phases == 0


class TestNestSelection:
    def test_inner_wins_when_it_qualifies(self):
        # Outer loop [0, 100); inner [10, 60) with gaps > 1 around it.
        t = trace(
            (ME, 0, 0),
            (LE, 0, 0),
            (LE, 1, 10), (LX, 1, 60),
            (LX, 0, 100),
            (MX, 0, 100),
            num_branches=100,
        )
        solution = solve_baseline(t, mpl=20)
        assert [(p.start, p.end) for p in solution.phases] == [(10, 60)]

    def test_outer_wins_when_inner_too_small(self):
        t = trace(
            (ME, 0, 0),
            (LE, 0, 0),
            (LE, 1, 10), (LX, 1, 25),
            (LX, 0, 100),
            (MX, 0, 100),
            num_branches=100,
        )
        solution = solve_baseline(t, mpl=20)
        assert [(p.start, p.end) for p in solution.phases] == [(0, 100)]

    def test_perfect_nest_merges_inner_executions(self):
        # Inner executions separated by exactly 1 element (outer back edge).
        events = [(ME, 0, 0), (LE, 0, 0)]
        time = 1
        for _ in range(4):
            events.append((LE, 1, time))
            events.append((LX, 1, time + 20))
            time += 21  # 1-element gap before the next inner execution
        events.append((LX, 0, time + 2))
        events.append((MX, 0, time + 2))
        t = trace(*events, num_branches=time + 2)
        solution = solve_baseline(t, mpl=30)
        # The merged inner run qualifies as one phase; inner executions
        # (20 each) alone would not.
        assert solution.num_phases == 1
        phase = solution.phases[0]
        assert phase.start == 1
        assert phase.end >= time - 1

    def test_separated_inner_executions_stay_separate(self):
        events = [(ME, 0, 0), (LE, 0, 0)]
        time = 5
        for _ in range(3):
            events.append((LE, 1, time))
            events.append((LX, 1, time + 30))
            time += 35  # 5-element gaps: no merging
        events.append((LX, 0, time + 5))
        events.append((MX, 0, time + 5))
        t = trace(*events, num_branches=time + 5)
        solution = solve_baseline(t, mpl=25)
        assert solution.num_phases == 3

    def test_recursion_root_phase(self):
        t = trace(
            (ME, 0, 0),
            (ME, 1, 10), (ME, 1, 20), (MX, 1, 50), (MX, 1, 80),
            (MX, 0, 100),
            num_branches=100,
        )
        solution = solve_baseline(t, mpl=40)
        assert [(p.start, p.end) for p in solution.phases] == [(10, 80)]


class TestSolutionProperties:
    def _solution(self, mpl=20):
        t = trace(
            (ME, 0, 0),
            (LE, 0, 10), (LX, 0, 40),
            (LE, 1, 50), (LX, 1, 90),
            (MX, 0, 100),
            num_branches=100,
        )
        return solve_baseline(t, mpl=mpl)

    def test_states_match_phases(self):
        solution = self._solution()
        states = solution.states()
        assert states.shape == (100,)
        assert states[10:40].all() and states[50:90].all()
        assert not states[:10].any() and not states[40:50].any() and not states[90:].any()

    def test_percent_in_phase(self):
        solution = self._solution()
        assert solution.percent_in_phase == pytest.approx(70.0)
        assert solution.elements_in_phase == 70

    def test_phases_sorted_disjoint(self):
        solution = self._solution()
        previous_end = 0
        for phase in solution.phases:
            assert phase.start >= previous_end
            previous_end = phase.end

    def test_monotone_phase_count_in_mpl(self):
        counts = [self._solution(mpl).num_phases for mpl in (10, 30, 41, 1000)]
        assert counts == sorted(counts, reverse=True)


class TestOracleOnRealPrograms:
    def test_repeated_work_loops_found(self, minilang_runner):
        source = """
        fn work(n) {
            var i = 0;
            while (i < n) { i = i + 1; }
            return i;
        }
        fn pad(v) {
            var x = v;
            if (x % 2 == 0) { x = x + 1; }
            if (x % 3 == 0) { x = x + 2; }
            if (x % 5 == 0) { x = x + 3; }
            return x;
        }
        fn main() {
            var acc = work(200);
            acc = acc + pad(acc);
            acc = acc + work(200);
            acc = acc + pad(acc);
            acc = acc + work(200);
            return acc;
        }
        """
        _, sink = minilang_runner(source)
        solution = solve_baseline(sink.call_loop_trace("t"), mpl=100)
        assert solution.num_phases == 3
        lengths = [p.length for p in solution.phases]
        assert all(195 <= length <= 205 for length in lengths)

    def test_states_length_matches_branches(self, minilang_runner):
        source = "fn main() { var i = 0; while (i < 50) { i = i + 1; } return i; }"
        _, sink = minilang_runner(source)
        clt = sink.call_loop_trace("t")
        solution = solve_baseline(clt, mpl=10)
        assert solution.states().shape[0] == clt.num_branches
