"""Hierarchical phase structure tests."""

import pytest

from repro.baseline.hierarchy import solve_hierarchy
from repro.baseline.oracle import solve_baseline
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind
from repro.workloads import load_traces

ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


def trace(*events, num_branches):
    return CallLoopTrace(
        [CallLoopEvent(k, i, t) for k, i, t in events], num_branches=num_branches
    )


@pytest.fixture
def nested_trace():
    # Outer loop [0, 300) containing two inner loops [20, 120) and
    # [150, 260), each with gaps > 1 around them.
    return trace(
        (ME, 0, 0),
        (LE, 0, 0),
        (LE, 1, 20), (LX, 1, 120),
        (LE, 2, 150), (LX, 2, 260),
        (LX, 0, 300),
        (MX, 0, 300),
        num_branches=300,
    )


class TestHierarchyStructure:
    def test_nesting_preserved(self, nested_trace):
        hierarchy = solve_hierarchy(nested_trace, mpl=50)
        assert len(hierarchy.roots) == 1
        outer = hierarchy.roots[0]
        assert (outer.start, outer.end) == (0, 300)
        assert [c.static_id for c in outer.children] == [("l", 1), ("l", 2)]
        assert hierarchy.max_depth() == 2

    def test_depths(self, nested_trace):
        hierarchy = solve_hierarchy(nested_trace, mpl=50)
        assert len(hierarchy.at_depth(0)) == 1
        assert len(hierarchy.at_depth(1)) == 2

    def test_small_inner_skipped(self, nested_trace):
        hierarchy = solve_hierarchy(nested_trace, mpl=105)
        outer = hierarchy.roots[0]
        # Only the second inner loop (110 long) qualifies at MPL 105.
        assert [c.static_id for c in outer.children] == [("l", 2)]

    def test_mpl_validation(self, nested_trace):
        with pytest.raises(ValueError):
            solve_hierarchy(nested_trace, mpl=0)

    def test_intervening_levels_skipped(self):
        # Outer loop -> method call -> inner loop: the method invocation
        # is not repetitive, so the inner loop attaches directly.
        t = trace(
            (ME, 0, 0),
            (LE, 0, 0),
            (ME, 1, 10),
            (LE, 1, 20), (LX, 1, 120),
            (MX, 1, 130),
            (LX, 0, 200),
            (MX, 0, 200),
            num_branches=200,
        )
        hierarchy = solve_hierarchy(t, mpl=50)
        outer = hierarchy.roots[0]
        assert outer.static_id == ("l", 0)
        assert outer.children[0].static_id == ("l", 1)
        assert outer.children[0].depth == 1


class TestFlatConsistency:
    def test_leaves_equal_flat_solution(self, nested_trace):
        for mpl in (10, 50, 105, 200, 500):
            hierarchy = solve_hierarchy(nested_trace, mpl=mpl)
            flat = solve_baseline(nested_trace, mpl=mpl)
            leaf_intervals = sorted((l.start, l.end) for l in hierarchy.leaves())
            flat_intervals = sorted((p.start, p.end) for p in flat.phases)
            assert leaf_intervals == flat_intervals, mpl

    def test_flat_solution_export(self, nested_trace):
        hierarchy = solve_hierarchy(nested_trace, mpl=50)
        exported = hierarchy.flat_solution()
        flat = solve_baseline(nested_trace, mpl=50)
        assert [(p.start, p.end) for p in exported.phases] == [
            (p.start, p.end) for p in flat.phases
        ]
        assert exported.percent_in_phase == pytest.approx(flat.percent_in_phase)

    def test_leaves_equal_flat_on_real_workload(self, tmp_path):
        _, call_loop = load_traces("mpegaudio", scale=0.15, cache_dir=tmp_path)
        for mpl in (20, 100, 600):
            hierarchy = solve_hierarchy(call_loop, mpl)
            flat = solve_baseline(call_loop, mpl)
            assert sorted((l.start, l.end) for l in hierarchy.leaves()) == sorted(
                (p.start, p.end) for p in flat.phases
            )

    def test_hierarchy_is_laminar(self, tmp_path):
        _, call_loop = load_traces("compress", scale=0.15, cache_dir=tmp_path)
        hierarchy = solve_hierarchy(call_loop, 20)
        for node in hierarchy.walk():
            for child in node.children:
                assert node.start <= child.start <= child.end <= node.end
