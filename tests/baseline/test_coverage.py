"""Baseline coverage-statistics tests."""

import pytest

from repro.baseline.coverage import BaselineCoverage, coverage_for_mpls
from repro.baseline.oracle import BaselineSolution, PhaseInterval, solve_baseline
from repro.baseline.cri import CRIKind
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind

ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


def phase(start, end):
    return PhaseInterval(start=start, end=end, static_id=("l", 0), kind=CRIKind.LOOP)


class TestBaselineCoverage:
    def test_of_solution(self):
        solution = BaselineSolution(
            [phase(0, 40), phase(60, 160)], num_elements=200, mpl=20
        )
        coverage = BaselineCoverage.of(solution)
        assert coverage.num_phases == 2
        assert coverage.percent_in_phase == pytest.approx(70.0)
        assert coverage.mean_phase_length == pytest.approx(70.0)
        assert coverage.median_phase_length == pytest.approx(70.0)  # numpy even-count median
        assert coverage.max_phase_length == 100
        assert coverage.mpl == 20

    def test_empty_solution(self):
        coverage = BaselineCoverage.of(BaselineSolution([], num_elements=100, mpl=5))
        assert coverage.num_phases == 0
        assert coverage.percent_in_phase == 0.0
        assert coverage.mean_phase_length == 0.0
        assert coverage.max_phase_length == 0

    def test_coverage_for_mpls_ordering(self):
        trace = CallLoopTrace(
            [
                CallLoopEvent(ME, 0, 0),
                CallLoopEvent(LE, 0, 5),
                CallLoopEvent(LX, 0, 80),
                CallLoopEvent(MX, 0, 100),
            ],
            num_branches=100,
        )
        result = coverage_for_mpls(trace, [10, 50, 90])
        assert list(result) == [10, 50, 90]
        assert result[10].num_phases == 1
        assert result[90].num_phases == 0
