"""CLI tests for the live-telemetry surface: ``serve-stats``,
``obs top``, ``obs trace export``, ``obs summary`` on serve manifests,
and ``sweep --trace``."""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.core.config import DetectorConfig
from repro.obs.trace import Tracer, read_spans
from repro.serve.client import ServeClient
from repro.serve.server import PhaseServer

CONFIG = DetectorConfig(cw_size=100, threshold=0.6)


@contextlib.contextmanager
def live_server(**kwargs):
    """A PhaseServer on 127.0.0.1 in a background thread, so the CLI
    commands under test can dial it from this thread's event loop."""
    ready = threading.Event()
    box = {"clients": []}

    def runner():
        async def serve():
            server = PhaseServer(**kwargs)
            await server.start(host="127.0.0.1", port=0)
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            ready.set()
            await box["stop"].wait()
            for client in box["clients"]:
                await client.aclose()
            await server.drain()
            server.close()

        asyncio.run(serve())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    try:
        yield box
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=10)


def feed(box, sid="cli", chunks=4, chunk_len=150):
    """Open a session and feed it, keeping the connection alive (the
    server closes a connection's sessions when it drops) until the
    ``live_server`` context tears down."""

    async def run():
        client = await ServeClient.connect("127.0.0.1", box["server"].port)
        await client.open(sid, CONFIG)
        for _ in range(chunks):
            await client.send(sid, list(range(chunk_len)))
        box["clients"].append(client)

    asyncio.run_coroutine_threadsafe(run(), box["loop"]).result(timeout=10)


def unused_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServeStats:
    def test_renders_health_and_stats(self, capsys):
        with live_server() as box:
            feed(box)
            capsys.readouterr()
            code = main(["serve-stats", "--port", str(box["server"].port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "health: ok" in out
        assert "serve stats (protocol 2," in out
        assert "sessions: 1 open, 1 resident, 0 parked" in out
        assert "serve.events_in = 600" in out
        assert "serve.feed_seconds: n=4 p50=" in out

    def test_json_dump_is_parseable(self, capsys):
        with live_server() as box:
            feed(box)
            capsys.readouterr()
            code = main(["serve-stats", "--port",
                         str(box["server"].port), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["protocol"] == 2
        assert payload["healthz"]["status"] == "ok"

    def test_unreachable_server_fails_cleanly(self, capsys):
        capsys.readouterr()
        assert main(["serve-stats", "--port", str(unused_port())]) == 1
        assert "cannot reach server" in capsys.readouterr().err


class TestObsTop:
    def test_once_prints_one_frame(self, capsys):
        with live_server(flight_interval=0.05) as box:
            feed(box)
            import time

            time.sleep(0.12)  # let the flight loop take a sample
            capsys.readouterr()
            code = main(
                ["obs", "top", "--port", str(box["server"].port), "--once"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("uptime") == 1
        assert "sessions 1 (1 resident, 0 parked)" in out
        assert "feed p99" in out
        assert "evictions 0" in out

    def test_frames_limit_polls_n_times(self, capsys):
        with live_server() as box:
            capsys.readouterr()
            code = main(
                ["obs", "top", "--port", str(box["server"].port),
                 "--frames", "2", "--interval", "0.01"]
            )
        assert code == 0
        assert capsys.readouterr().out.count("uptime") == 2

    def test_unreachable_server_fails_cleanly(self, capsys):
        capsys.readouterr()
        assert main(["obs", "top", "--port", str(unused_port()),
                     "--once"]) == 1
        assert "cannot reach server" in capsys.readouterr().err


class TestObsTraceExport:
    @pytest.fixture
    def spans_path(self, tmp_path):
        tracer = Tracer()
        with tracer.span("sweep", profile="demo") as root:
            with tracer.span("sweep.job", parent=root, benchmark="db"):
                pass
        return tracer.save(tmp_path / "run.spans.jsonl")

    def test_chrome_export_to_file(self, spans_path, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        capsys.readouterr()
        code = main(["obs", "trace", "export", str(spans_path),
                     "--chrome", "--out", str(out_path)])
        assert code == 0
        assert "2 spans ->" in capsys.readouterr().out
        document = json.loads(out_path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["sweep", "sweep.job"]
        assert all(e["ph"] == "X" for e in events)

    def test_chrome_export_to_stdout(self, spans_path, capsys):
        capsys.readouterr()
        assert main(["obs", "trace", "export", str(spans_path),
                     "--chrome"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["traceEvents"]) == 2

    def test_plain_listing(self, spans_path, capsys):
        capsys.readouterr()
        assert main(["obs", "trace", "export", str(spans_path)]) == 0
        out = capsys.readouterr().out
        assert "span trace" in out and "2 spans" in out
        assert "sweep.job:" in out

    def test_unreadable_trace_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"nope": true}\n', encoding="utf-8")
        capsys.readouterr()
        assert main(["obs", "trace", "export", str(bad)]) == 1
        assert "cannot read span trace" in capsys.readouterr().err


class TestObsSummaryServeRun:
    def test_summary_renders_serve_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "serve.manifest.json"

        async def run():
            server = PhaseServer(name="cli-telemetry")
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.open("a", CONFIG)
            await client.send("a", list(range(400)))
            await client.close_session("a")
            await client.aclose()
            await server.drain(manifest_path)
            server.close()

        asyncio.run(run())
        capsys.readouterr()
        assert main(["obs", "summary", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "serve manifest: 'cli-telemetry'" in out
        assert "1 sessions" in out and "400 events in" in out
        assert "sid" in out and "events_in" in out  # per-session table
        assert "serve.feed_seconds: n=1 p50=" in out


class TestSweepTrace:
    def _tiny_profile(self, monkeypatch):
        from repro.experiments import config_space

        tiny = config_space.SuiteProfile(
            name="tinytrace",
            workload_scale=0.08,
            thresholds=(0.6,),
            deltas=(0.05,),
            cw_nominals=(500,),
        )
        monkeypatch.setitem(config_space.PROFILES, "tinytrace", tiny)

    def test_sweep_trace_nests_sweep_bank_kernel(
        self, tmp_path, capsys, monkeypatch
    ):
        """The acceptance-criteria span tree: a traced sweep exports
        sweep -> sweep.job -> bank.run -> bank.kernel, and the Chrome
        document for it is schema-valid."""
        self._tiny_profile(monkeypatch)
        spans_path = tmp_path / "sweep.spans.jsonl"
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinytrace", "--benchmarks", "db",
             "--cache-dir", str(tmp_path), "--quiet",
             "--trace", str(spans_path)]
        )
        assert code == 0
        assert "spans:" in capsys.readouterr().out

        _, spans = read_spans(spans_path)
        by_id = {span["span"]: span for span in spans}
        names = [span["name"] for span in spans]
        assert names.count("sweep") == 1
        for child, parent in (
            ("sweep.job", "sweep"),
            ("bank.run", "sweep.job"),
            ("bank.kernel", "bank.run"),
        ):
            children = [s for s in spans if s["name"] == child]
            assert children, f"no {child} spans recorded"
            for span in children:
                assert by_id[span["parent"]]["name"] == parent
        sweep_span = next(s for s in spans if s["name"] == "sweep")
        assert sweep_span["parent"] is None
        assert sweep_span["attrs"]["profile"] == "tinytrace"

        # Chrome export of the same trace round-trips through the CLI.
        out_path = tmp_path / "sweep.chrome.json"
        assert main(["obs", "trace", "export", str(spans_path),
                     "--chrome", "--out", str(out_path)]) == 0
        document = json.loads(out_path.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert len(events) == len(spans)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0

    def test_trace_forces_serial_evaluation(
        self, tmp_path, capsys, monkeypatch
    ):
        self._tiny_profile(monkeypatch)
        spans_path = tmp_path / "sweep.spans.jsonl"
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinytrace", "--benchmarks", "db",
             "--cache-dir", str(tmp_path), "--quiet", "--jobs", "2",
             "--trace", str(spans_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "forcing --jobs 1" in captured.err
        assert "jobs=1" in captured.out
        assert spans_path.exists()
