"""Assembler/disassembler tests."""

import pytest

from repro.vm.assembler import assemble, disassemble
from repro.vm.errors import AssemblyError
from repro.vm.interpreter import run_program
from repro.vm.isa import Opcode

COUNTDOWN = """
; count down from 5, summing
.func main params=0 locals=2
  push 5
  store 0
  push 0
  store 1
head:
  load 0
  br_ifz done
  load 1
  load 0
  add
  store 1
  load 0
  push 1
  sub
  store 0
  jmp head
done:
  load 1
  ret
.endfunc
"""


class TestAssemble:
    def test_countdown_runs(self):
        program = assemble(COUNTDOWN)
        assert run_program(program) == 15

    def test_labels_resolve_to_offsets(self):
        program = assemble(COUNTDOWN)
        branch = next(i for i in program.function("main").code if i.op is Opcode.BR_IFZ)
        assert isinstance(branch.arg, int)

    def test_call_by_name(self):
        source = """
        .func double params=1 locals=1
          load 0
          push 2
          mul
          ret
        .endfunc
        .func main params=0 locals=0
          push 21
          call double 1
          ret
        .endfunc
        """
        assert run_program(assemble(source)) == 42

    def test_loop_markers_get_ids(self):
        source = """
        .func main params=0 locals=1
          loop_begin body
          push 0
          store 0
        head:
          load 0
          push 3
          lt
          br_if head
          loop_end body
          push 0
          ret
        .endfunc
        """
        program = assemble(source)
        assert len(program.loops) == 1
        assert program.loops[0].label == "body"

    def test_comments_and_blank_lines(self):
        program = assemble("; hi\n\n.func main params=0 locals=0\n  push 1 ; inline\n  ret\n.endfunc\n")
        assert run_program(program) == 1

    def test_hex_operands(self):
        program = assemble(".func main params=0 locals=0\n  push 0x10\n  ret\n.endfunc")
        assert run_program(program) == 16


class TestAssemblyErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\n  frobnicate\n.endfunc")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\n  jmp nowhere\n  ret\n.endfunc")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\nx:\nx:\n  ret\n.endfunc")

    def test_unknown_callee(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\n  call ghost 0\n  ret\n.endfunc")

    def test_instruction_outside_function(self):
        with pytest.raises(AssemblyError):
            assemble("push 1")

    def test_unterminated_function(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\n  ret")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble(".func main params=0 locals=0\n  push\n  ret\n.endfunc")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as err:
            assemble(".func main params=0 locals=0\n  ret\n  bogus\n.endfunc")
        assert err.value.line == 3


class TestDisassemble:
    def test_round_trip(self):
        program = assemble(COUNTDOWN)
        text = disassemble(program)
        again = assemble(text)
        assert run_program(again) == run_program(program) == 15

    def test_round_trip_with_calls_and_loops(self):
        source = """
        .func helper params=1 locals=1
          load 0
          push 1
          add
          ret
        .endfunc
        .func main params=0 locals=1
          loop_begin spin
          push 0
          store 0
        top:
          load 0
          push 5
          lt
          br_ifz out
          load 0
          call helper 1
          store 0
          jmp top
        out:
          loop_end spin
          load 0
          ret
        .endfunc
        """
        program = assemble(source)
        again = assemble(disassemble(program))
        assert run_program(again) == run_program(program) == 5
