"""Optimizer tests: semantics preserved, code shrinks where expected."""

import pytest

from repro.vm.compiler import compile_module, compile_source
from repro.vm.interpreter import run_program
from repro.vm.isa import Opcode
from repro.vm.optimizer import fold_expr, optimize_module, peephole
from repro.vm.parser import parse
from repro.vm.ast_nodes import Binary, IntLiteral


def optimized(source):
    return peephole(compile_module(optimize_module(parse(source))))


def both_results(source, seed=0x5EED):
    plain = run_program(compile_source(source), seed=seed)
    opt = run_program(optimized(source), seed=seed)
    return plain, opt


class TestFoldExpr:
    def parse_expr(self, text):
        module = parse(f"fn main() {{ return {text}; }}")
        return module.function("main").body[0].value

    def test_arithmetic_folds(self):
        folded = fold_expr(self.parse_expr("2 + 3 * 4"))
        assert isinstance(folded, IntLiteral)
        assert folded.value == 14

    def test_division_truncates(self):
        assert fold_expr(self.parse_expr("-(7) / 2")).value == -3
        assert fold_expr(self.parse_expr("-(7) % 2")).value == -1

    def test_division_by_zero_not_folded(self):
        folded = fold_expr(self.parse_expr("1 / 0"))
        assert isinstance(folded, Binary)  # preserved: must fault at runtime

    def test_short_circuit_constant_left(self):
        assert fold_expr(self.parse_expr("0 && (1 / 0)")).value == 0
        assert fold_expr(self.parse_expr("5 || (1 / 0)")).value == 1

    def test_names_block_folding(self):
        module = parse("fn main() { var x = 1; return x + 2; }")
        expr = module.function("main").body[1].value
        assert isinstance(fold_expr(expr), Binary)

    def test_comparison_folds(self):
        assert fold_expr(self.parse_expr("3 < 5")).value == 1
        assert fold_expr(self.parse_expr("!(3 < 5)")).value == 0


class TestStatementFolding:
    def test_static_if_splices_arm(self):
        source = """
        fn main() {
            var acc = 0;
            if (1 < 2) { acc = acc + 10; } else { acc = acc + 99; }
            return acc;
        }
        """
        program = optimized(source)
        opcodes = [i.op for i in program.function("main").code]
        assert Opcode.BR_IFZ not in opcodes  # the branch folded away
        assert run_program(program) == 10

    def test_dead_while_removed(self):
        source = """
        fn main() {
            var acc = 7;
            while (0) { acc = acc + 1; }
            return acc;
        }
        """
        program = optimized(source)
        opcodes = [i.op for i in program.function("main").code]
        assert Opcode.LOOP_BEGIN not in opcodes
        assert run_program(program) == 7

    def test_arm_with_decl_not_spliced(self):
        source = """
        fn main() {
            if (1) { var t = 5; setmem(0, t); }
            if (1) { var t = 6; setmem(1, t); }
            return mem(0) * 10 + mem(1);
        }
        """
        plain, opt = both_results(source)
        assert plain == opt == 56

    def test_pure_constant_statement_dropped(self):
        source = "fn main() { 1 + 2; return 3; }"
        program = optimized(source)
        assert run_program(program) == 3


class TestPeephole:
    def test_push_push_binop_folds(self):
        program = compile_source("fn main() { var x = 0; return x + (2 + 3); }")
        before = program.num_instructions()
        after = peephole(program).num_instructions()
        assert after < before

    def test_jump_targets_preserved(self):
        source = """
        fn main() {
            var acc = 0;
            var i = 0;
            while (i < 4 + 6) {
                acc = acc + 2 * 3;
                i = i + 1;
            }
            return acc;
        }
        """
        plain, opt = both_results(source)
        assert plain == opt == 60

    def test_idempotent(self):
        program = compile_source("fn main() { return 1 + 2 + 3; }")
        once = peephole(program)
        twice = peephole(once)
        assert [str(i) for f in once.functions for i in f.code] == [
            str(i) for f in twice.functions for i in f.code
        ]


class TestEndToEndEquivalence:
    SOURCES = [
        # mixed arithmetic, conditions, loops
        """
        fn main() {
            var acc = 0;
            for (var i = 0; i < 25; i = i + 1) {
                if (i % 3 == 0 && i % 2 == 0) { acc = acc + i * 2; }
                else if (i % 5 == 1 || 0) { acc = acc - 1; }
            }
            return acc;
        }
        """,
        # recursion with foldable leaf math
        """
        fn f(n) {
            if (n <= 0) { return 3 * 4 - 12; }
            return f(n - 1) + 2 * 3;
        }
        fn main() { return f(9); }
        """,
        # memory and rnd (must stay unfolded)
        """
        fn main() {
            setmem(2 + 3, 10 * 2);
            var v = mem(5) + rnd(4 + 4);
            return v;
        }
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_results_identical(self, source):
        plain, opt = both_results(source)
        assert plain == opt

    @pytest.mark.parametrize("source", SOURCES)
    def test_optimized_not_larger(self, source):
        plain = compile_source(source)
        opt = optimized(source)
        assert opt.num_instructions() <= plain.num_instructions()
