"""MiniLang parser tests."""

import pytest

from repro.vm.ast_nodes import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    For,
    Halt,
    If,
    IntLiteral,
    Name,
    Return,
    Unary,
    VarDecl,
    While,
)
from repro.vm.errors import MiniLangSyntaxError
from repro.vm.parser import parse


def parse_body(body):
    module = parse(f"fn main() {{ {body} }}")
    return module.function("main").body


def parse_expr(text):
    (stmt,) = parse_body(f"{text};")
    assert isinstance(stmt, ExprStmt)
    return stmt.value


class TestTopLevel:
    def test_functions_and_params(self):
        module = parse("fn f(a, b) { return a; } fn main() { return f(1, 2); }")
        assert [f.name for f in module.functions] == ["f", "main"]
        assert module.function("f").params == ("a", "b")

    def test_empty_module_rejected(self):
        with pytest.raises(MiniLangSyntaxError):
            parse("   ")

    def test_duplicate_params_rejected(self):
        with pytest.raises(MiniLangSyntaxError):
            parse("fn f(a, a) { return 0; }")

    def test_missing_brace(self):
        with pytest.raises(MiniLangSyntaxError):
            parse("fn main() { return 0;")


class TestStatements:
    def test_var_decl(self):
        (stmt,) = parse_body("var x = 3;")
        assert isinstance(stmt, VarDecl)
        assert stmt.ident == "x"
        assert isinstance(stmt.value, IntLiteral)

    def test_assignment(self):
        stmts = parse_body("var x = 0; x = x + 1;")
        assert isinstance(stmts[1], Assign)

    def test_if_else_chain(self):
        (stmt,) = parse_body("if (1) { halt; } else if (2) { halt; } else { halt; }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_body[0], If)
        assert isinstance(stmt.else_body[0].else_body[0], Halt)

    def test_while_gets_loop_label(self):
        (stmt,) = parse_body("while (1) { halt; }")
        assert isinstance(stmt, While)
        assert stmt.label

    def test_for_desugar_parts(self):
        (stmt,) = parse_body("for (var i = 0; i < 3; i = i + 1) { halt; }")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, VarDecl)
        assert isinstance(stmt.cond, Binary)
        assert isinstance(stmt.step, Assign)

    def test_for_with_empty_slots(self):
        (stmt,) = parse_body("for (;;) { halt; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_bare_return(self):
        (stmt,) = parse_body("return;")
        assert isinstance(stmt, Return)
        assert stmt.value is None

    def test_missing_semicolon(self):
        with pytest.raises(MiniLangSyntaxError):
            parse_body("var x = 3")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_comparison_below_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_or_below_and(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary(self):
        expr = parse_expr("-x + !y")
        assert isinstance(expr.left, Unary) and expr.left.op == "-"
        assert isinstance(expr.right, Unary) and expr.right.op == "!"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_call_with_args(self):
        module = parse("fn g(a) { return a; } fn main() { return g(1 + 2); }")
        ret = module.function("main").body[0]
        assert isinstance(ret.value, Call)
        assert ret.value.callee == "g"
        assert len(ret.value.args) == 1

    def test_nested_calls(self):
        expr = parse_expr("rnd(mem(3))")
        assert expr.callee == "rnd"
        assert expr.args[0].callee == "mem"

    def test_name_vs_call(self):
        expr = parse_expr("x")
        assert isinstance(expr, Name)

    def test_garbage_expression(self):
        with pytest.raises(MiniLangSyntaxError):
            parse_expr("1 + ;")
