"""MiniLang compiler tests: codegen shape and semantic errors."""

import pytest

from repro.vm.compiler import compile_source
from repro.vm.errors import CompileError
from repro.vm.isa import Opcode


def ops(program, function="main"):
    return [instr.op for instr in program.function(function).code]


class TestCodegenShape:
    def test_implicit_return_zero(self):
        program = compile_source("fn main() { var x = 1; }")
        code = program.function("main").code
        assert code[-1].op is Opcode.RET
        assert code[-2].op is Opcode.PUSH and code[-2].arg == 0

    def test_while_has_loop_markers_and_branch(self):
        program = compile_source("fn main() { var i = 0; while (i < 3) { i = i + 1; } }")
        opcodes = ops(program)
        assert Opcode.LOOP_BEGIN in opcodes
        assert Opcode.LOOP_END in opcodes
        assert Opcode.BR_IFZ in opcodes
        # LOOP_BEGIN precedes LOOP_END
        assert opcodes.index(Opcode.LOOP_BEGIN) < opcodes.index(Opcode.LOOP_END)

    def test_for_registers_one_loop(self):
        program = compile_source("fn main() { for (var i = 0; i < 2; i = i + 1) { } }")
        assert len(program.loops) == 1
        assert program.loops[0].function_id == 0

    def test_if_without_else_single_branch(self):
        program = compile_source("fn main() { if (1) { var x = 2; } }")
        opcodes = ops(program)
        assert opcodes.count(Opcode.BR_IFZ) == 1
        assert Opcode.JMP not in opcodes

    def test_if_else_has_skip_jump(self):
        program = compile_source("fn main() { if (1) { var x = 2; } else { var y = 3; } }")
        assert Opcode.JMP in ops(program)

    def test_short_circuit_and_uses_br_ifz(self):
        program = compile_source("fn main() { return 1 && 2; }")
        opcodes = ops(program)
        assert Opcode.BR_IFZ in opcodes
        assert opcodes.count(Opcode.NOT) == 2

    def test_short_circuit_or_uses_br_if(self):
        program = compile_source("fn main() { return 0 || 3; }")
        assert Opcode.BR_IF in ops(program)

    def test_builtin_rnd(self):
        assert Opcode.RND in ops(compile_source("fn main() { return rnd(10); }"))

    def test_builtin_mem_setmem(self):
        program = compile_source("fn main() { setmem(1, 2); return mem(1); }")
        opcodes = ops(program)
        assert Opcode.GSTORE in opcodes
        assert Opcode.GLOAD in opcodes

    def test_call_arity_encoded(self):
        program = compile_source("fn f(a, b) { return a; } fn main() { return f(1, 2); }")
        call = next(i for i in program.function("main").code if i.op is Opcode.CALL)
        assert call.arg == 0  # f's id
        assert call.arg2 == 2

    def test_locals_layout(self):
        program = compile_source(
            "fn f(a, b) { var c = a; var d = b; return c + d; } fn main() { return f(1, 2); }"
        )
        func = program.function("f")
        assert func.num_params == 2
        assert func.num_locals == 4


class TestScoping:
    def test_block_scoping_allows_reuse(self):
        source = """
        fn main() {
            if (1) { var t = 1; }
            if (1) { var t = 2; }
            return 0;
        }
        """
        compile_source(source)  # must not raise

    def test_shadowing_in_nested_block(self):
        source = """
        fn main() {
            var x = 1;
            if (1) { var x = 2; }
            return x;
        }
        """
        program = compile_source(source)
        from repro.vm.interpreter import run_program

        assert run_program(program) == 1

    def test_redeclaration_same_scope_rejected(self):
        with pytest.raises(CompileError):
            compile_source("fn main() { var x = 1; var x = 2; }")

    def test_undefined_variable(self):
        with pytest.raises(CompileError):
            compile_source("fn main() { return nope; }")

    def test_for_init_scope_is_local_to_loop(self):
        with pytest.raises(CompileError):
            compile_source(
                "fn main() { for (var i = 0; i < 2; i = i + 1) { } return i; }"
            )


class TestSemanticErrors:
    def test_unknown_function(self):
        with pytest.raises(CompileError):
            compile_source("fn main() { return missing(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError):
            compile_source("fn f(a) { return a; } fn main() { return f(1, 2); }")

    def test_builtin_arity(self):
        with pytest.raises(CompileError):
            compile_source("fn main() { return rnd(1, 2); }")

    def test_duplicate_function(self):
        with pytest.raises(CompileError):
            compile_source("fn f() { return 0; } fn f() { return 1; }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(CompileError):
            compile_source("fn rnd(x) { return x; } fn main() { return 0; }")
