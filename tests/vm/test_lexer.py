"""MiniLang lexer tests."""

import pytest

from repro.vm.errors import MiniLangSyntaxError
from repro.vm.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]  # drop EOF


class TestTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integers(self):
        assert kinds("0 42 1234") == [
            (TokenKind.INT, "0"),
            (TokenKind.INT, "42"),
            (TokenKind.INT, "1234"),
        ]

    def test_names_and_keywords(self):
        assert kinds("fn foo while x_1") == [
            (TokenKind.KEYWORD, "fn"),
            (TokenKind.NAME, "foo"),
            (TokenKind.KEYWORD, "while"),
            (TokenKind.NAME, "x_1"),
        ]

    def test_multi_char_operators_maximal_munch(self):
        assert kinds("== != <= >= && || < =") == [
            (TokenKind.OP, "=="),
            (TokenKind.OP, "!="),
            (TokenKind.OP, "<="),
            (TokenKind.OP, ">="),
            (TokenKind.OP, "&&"),
            (TokenKind.OP, "||"),
            (TokenKind.OP, "<"),
            (TokenKind.OP, "="),
        ]

    def test_comments_stripped(self):
        assert kinds("a // comment here\nb") == [
            (TokenKind.NAME, "a"),
            (TokenKind.NAME, "b"),
        ]

    def test_comment_at_eof(self):
        assert kinds("x // no newline") == [(TokenKind.NAME, "x")]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(MiniLangSyntaxError) as err:
            tokenize("a $ b")
        assert err.value.line == 1

    def test_adjacent_punctuation(self):
        assert kinds("f(x,y);") == [
            (TokenKind.NAME, "f"),
            (TokenKind.OP, "("),
            (TokenKind.NAME, "x"),
            (TokenKind.OP, ","),
            (TokenKind.NAME, "y"),
            (TokenKind.OP, ")"),
            (TokenKind.OP, ";"),
        ]

    def test_underscore_leading_name(self):
        assert kinds("_tmp") == [(TokenKind.NAME, "_tmp")]
