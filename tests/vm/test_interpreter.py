"""Interpreter semantics and instrumentation tests."""

import pytest

from repro.profiles.callloop import EventKind
from repro.vm.compiler import compile_source
from repro.vm.errors import ExecutionError, FuelExhaustedError, StackOverflowError
from repro.vm.interpreter import Interpreter, run_program
from repro.vm.tracing import CollectingSink, CountingSink


def run(source, seed=0x5EED, **kwargs):
    return run_program(compile_source(source), seed=seed, **kwargs)


def run_traced(source, seed=0x5EED):
    program = compile_source(source)
    sink = CollectingSink()
    result = Interpreter(max_call_depth=5_000).run(program, sink=sink, seed=seed)
    return result, sink


class TestArithmetic:
    def test_basic_ops(self):
        assert run("fn main() { return 2 + 3 * 4 - 1; }") == 13

    def test_division_truncates_toward_zero(self):
        assert run("fn main() { return 7 / 2; }") == 3
        assert run("fn main() { return -7 / 2; }") == -3
        assert run("fn main() { return 7 / -2; }") == -3

    def test_modulo_c_style(self):
        assert run("fn main() { return 7 % 3; }") == 1
        assert run("fn main() { return -7 % 3; }") == -1

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            run("fn main() { var z = 0; return 1 / z; }")

    def test_comparisons(self):
        assert run("fn main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3); }") == 3
        assert run("fn main() { return (1 == 1) + (1 != 1); }") == 1

    def test_unary(self):
        assert run("fn main() { return -(3) + !0 + !7; }") == -2

    def test_short_circuit_semantics(self):
        # Right side would divide by zero; && must not evaluate it.
        assert run("fn main() { var z = 0; return 0 && (1 / z); }") == 0
        assert run("fn main() { var z = 0; return 1 || (1 / z); }") == 1


class TestControlFlow:
    def test_while_loop(self):
        assert run("fn main() { var s = 0; var i = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }") == 10

    def test_for_loop(self):
        assert run("fn main() { var s = 0; for (var i = 1; i <= 4; i = i + 1) { s = s + i; } return s; }") == 10

    def test_nested_if(self):
        source = """
        fn classify(x) {
            if (x < 0) { return 0 - 1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        fn main() { return classify(0 - 5) * 100 + classify(0) * 10 + classify(9); }
        """
        assert run(source) == -99  # -1*100 + 0 + 1

    def test_recursion(self):
        assert run("fn fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); } fn main() { return fact(6); }") == 720

    def test_halt_from_nested_call(self):
        source = """
        fn inner() { halt; return 9; }
        fn main() { var x = inner(); return x + 1; }
        """
        assert run(source) == 0

    def test_return_inside_loop(self):
        source = """
        fn find(limit) {
            var i = 0;
            while (i < limit) {
                if (i == 7) { return i; }
                i = i + 1;
            }
            return 0 - 1;
        }
        fn main() { return find(100); }
        """
        assert run(source) == 7


class TestBuiltins:
    def test_memory_round_trip(self):
        assert run("fn main() { setmem(42, 99); return mem(42); }") == 99

    def test_memory_defaults_to_zero(self):
        assert run("fn main() { return mem(12345); }") == 0

    def test_rnd_in_range_and_deterministic(self):
        source = """
        fn main() {
            var bad = 0;
            var i = 0;
            var acc = 0;
            while (i < 100) {
                var r = rnd(10);
                if (r < 0 || r >= 10) { bad = bad + 1; }
                acc = acc + r;
                i = i + 1;
            }
            return bad * 10000 + acc;
        }
        """
        first = run(source, seed=123)
        second = run(source, seed=123)
        other = run(source, seed=456)
        assert first == second
        assert first < 10000  # no out-of-range draws
        assert first != other  # different seed, different stream

    def test_rnd_bad_bound(self):
        with pytest.raises(ExecutionError):
            run("fn main() { var z = 0; return rnd(z); }")


class TestLimits:
    def test_stack_overflow(self):
        source = "fn loop_forever(n) { return loop_forever(n + 1); } fn main() { return loop_forever(0); }"
        with pytest.raises(StackOverflowError):
            run_program(compile_source(source), max_call_depth=100)

    def test_fuel_exhaustion(self):
        source = "fn main() { var i = 0; while (i >= 0) { i = i + 1; } return i; }"
        with pytest.raises(FuelExhaustedError):
            run_program(compile_source(source), max_fuel=10_000)

    def test_entry_arity_mismatch(self):
        with pytest.raises(ExecutionError):
            run_program(compile_source("fn main(x) { return x; }"), args=[])


class TestInstrumentation:
    def test_branch_elements_emitted_per_conditional(self):
        _, sink = run_traced("fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }")
        # while condition evaluated 4 times -> 4 conditional branches.
        assert len(sink.elements) == 4

    def test_branch_taken_bit(self):
        _, sink = run_traced("fn main() { var i = 0; while (i < 2) { i = i + 1; } return i; }")
        taken_bits = [e & 1 for e in sink.elements]
        # BR_IFZ: not-taken while looping, taken at exit.
        assert taken_bits == [0, 0, 1]

    def test_events_well_nested(self):
        _, sink = run_traced(
            """
            fn work(n) { var i = 0; while (i < n) { i = i + 1; } return i; }
            fn main() { return work(3) + work(2); }
            """
        )
        depth = 0
        for event in sink.events:
            if event.kind in (EventKind.METHOD_ENTRY, EventKind.LOOP_ENTRY):
                depth += 1
            else:
                depth -= 1
            assert depth >= 0
        assert depth == 0

    def test_early_return_closes_loops(self):
        _, sink = run_traced(
            """
            fn find() {
                var i = 0;
                while (i < 10) {
                    if (i == 2) { return i; }
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return find(); }
            """
        )
        entries = sum(1 for e in sink.events if e.kind is EventKind.LOOP_ENTRY)
        exits = sum(1 for e in sink.events if e.kind is EventKind.LOOP_EXIT)
        assert entries == exits == 1

    def test_halt_closes_everything(self):
        _, sink = run_traced(
            """
            fn inner() {
                var i = 0;
                while (i < 100) {
                    if (i == 3) { halt; }
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return inner(); }
            """
        )
        depth = 0
        for event in sink.events:
            depth += 1 if event.kind in (EventKind.METHOD_ENTRY, EventKind.LOOP_ENTRY) else -1
        assert depth == 0

    def test_event_times_match_branch_counts(self):
        _, sink = run_traced(
            "fn main() { var i = 0; while (i < 5) { i = i + 1; } return i; }"
        )
        loop_exit = next(e for e in sink.events if e.kind is EventKind.LOOP_EXIT)
        assert loop_exit.time == len(sink.elements)

    def test_counting_sink(self):
        program = compile_source(
            "fn f() { return 1; } fn main() { var i = 0; while (i < 2) { i = i + f(); } return i; }"
        )
        sink = CountingSink()
        Interpreter().run(program, sink=sink)
        assert sink.num_branches == 3
        assert sink.num_method_entries == sink.num_method_exits == 3  # main + 2*f
        assert sink.num_loop_entries == sink.num_loop_exits == 1

    def test_determinism_of_traces(self):
        source = """
        fn main() {
            var acc = 0;
            var i = 0;
            while (i < 50) {
                if (rnd(3) == 1) { acc = acc + 1; }
                i = i + 1;
            }
            return acc;
        }
        """
        _, first = run_traced(source, seed=9)
        _, second = run_traced(source, seed=9)
        assert first.elements == second.elements
        assert first.events == second.events
