"""Program validation and ISA encoding tests."""

import pytest

from repro.vm.errors import ValidationError
from repro.vm.isa import Instruction, Opcode
from repro.vm.program import Function, LoopInfo, Program


def func(name, func_id, code, params=0, locals_=None):
    return Function(
        name=name,
        func_id=func_id,
        num_params=params,
        num_locals=params if locals_ is None else locals_,
        code=code,
    )


RET0 = [Instruction(Opcode.PUSH, 0), Instruction(Opcode.RET)]


class TestInstruction:
    def test_operand_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.PUSH)  # needs an operand
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, 1)  # takes none
        with pytest.raises(ValueError):
            Instruction(Opcode.CALL, 1)  # needs two

    def test_str(self):
        assert str(Instruction(Opcode.PUSH, 7)) == "push 7"
        assert str(Instruction(Opcode.CALL, 0, 2)) == "call 0 2"
        assert str(Instruction(Opcode.RET)) == "ret"


class TestValidation:
    def test_valid_program(self):
        program = Program([func("main", 0, RET0)])
        assert program.entry_function.name == "main"

    def test_missing_entry(self):
        with pytest.raises(ValidationError):
            Program([func("helper", 0, RET0)], entry="main")

    def test_wrong_func_id(self):
        with pytest.raises(ValidationError):
            Program([func("main", 3, RET0)])

    def test_jump_out_of_range(self):
        code = [Instruction(Opcode.JMP, 10), Instruction(Opcode.RET)]
        with pytest.raises(ValidationError):
            Program([func("main", 0, code)])

    def test_call_to_missing_function(self):
        code = [Instruction(Opcode.CALL, 5, 0), Instruction(Opcode.RET)]
        with pytest.raises(ValidationError):
            Program([func("main", 0, code)])

    def test_call_arity_mismatch(self):
        helper = func("helper", 1, RET0, params=2, locals_=2)
        code = [Instruction(Opcode.PUSH, 1), Instruction(Opcode.CALL, 1, 1), Instruction(Opcode.RET)]
        with pytest.raises(ValidationError):
            Program([func("main", 0, code), helper])

    def test_local_slot_out_of_range(self):
        code = [Instruction(Opcode.LOAD, 0), Instruction(Opcode.RET)]
        with pytest.raises(ValidationError):
            Program([func("main", 0, code, params=0, locals_=0)])

    def test_fall_off_end(self):
        code = [Instruction(Opcode.PUSH, 1)]
        with pytest.raises(ValidationError):
            Program([func("main", 0, code)])

    def test_empty_function(self):
        with pytest.raises(ValidationError):
            Program([func("main", 0, [])])

    def test_unknown_loop_id(self):
        code = [Instruction(Opcode.LOOP_BEGIN, 9)] + RET0
        with pytest.raises(ValidationError):
            Program([func("main", 0, code)], loops=[LoopInfo(0, 0, "l")])

    def test_duplicate_loop_id(self):
        loops = [LoopInfo(0, 0, "a"), LoopInfo(0, 0, "b")]
        with pytest.raises(ValidationError):
            Program([func("main", 0, RET0)], loops=loops)

    def test_duplicate_function_names(self):
        with pytest.raises(ValidationError):
            Program([func("main", 0, RET0), func("main", 1, RET0)])

    def test_bad_locals_layout(self):
        with pytest.raises(ValidationError):
            Program([func("main", 0, RET0, params=3, locals_=1)])

    def test_function_lookup(self):
        program = Program([func("main", 0, RET0)])
        assert program.function("main").func_id == 0
        with pytest.raises(ValidationError):
            program.function("ghost")

    def test_num_instructions(self):
        program = Program([func("main", 0, RET0)])
        assert program.num_instructions() == 2
