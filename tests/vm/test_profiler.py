"""Hot-branch profiler tests."""

import pytest

from repro.profiles.element import encode_element
from repro.profiles.trace import BranchTrace
from repro.vm.compiler import compile_source
from repro.vm.interpreter import run_program
from repro.vm.profiler import profile_trace, render_profile
from repro.vm.tracing import CollectingSink


def make_trace(*site_outcomes):
    """site_outcomes: tuples (method, offset, taken) repeated in order."""
    return BranchTrace([encode_element(m, o, t) for m, o, t in site_outcomes])


class TestProfileTrace:
    def test_empty(self):
        profile = profile_trace(BranchTrace([]))
        assert profile.total_branches == 0
        assert profile.sites == []
        assert profile.coverage(3) == 0.0

    def test_site_aggregation(self):
        trace = make_trace((0, 1, True), (0, 1, False), (0, 1, True), (1, 4, False))
        profile = profile_trace(trace)
        assert profile.total_branches == 4
        assert len(profile.sites) == 2
        hot = profile.hottest(1)[0]
        assert (hot.method_id, hot.offset) == (0, 1)
        assert hot.executions == 3
        assert hot.taken == 2
        assert hot.taken_ratio == pytest.approx(2 / 3)

    def test_bias(self):
        trace = make_trace(*[(0, 0, True)] * 9, (0, 0, False))
        (site,) = profile_trace(trace).sites
        assert site.bias == pytest.approx(0.9)

    def test_per_function(self):
        trace = make_trace((0, 0, True), (0, 1, True), (2, 0, False))
        per_function = profile_trace(trace).per_function()
        assert per_function == {0: 2, 2: 1}

    def test_coverage_monotone_in_top(self):
        trace = make_trace(
            *[(0, 0, True)] * 5, *[(0, 1, True)] * 3, *[(1, 0, True)] * 2
        )
        profile = profile_trace(trace)
        assert profile.coverage(1) == pytest.approx(0.5)
        assert profile.coverage(2) == pytest.approx(0.8)
        assert profile.coverage(3) == pytest.approx(1.0)


class TestProfilerOnPrograms:
    def test_hot_loop_dominates(self):
        source = """
        fn cold(x) {
            if (x > 0) { return x; }
            return 0;
        }
        fn main() {
            var acc = cold(5);
            var i = 0;
            while (i < 500) {
                if (i % 2 == 0) { acc = acc + 1; }
                i = i + 1;
            }
            return acc;
        }
        """
        program = compile_source(source)
        sink = CollectingSink()
        run_program(program, sink=sink)
        profile = profile_trace(sink.branch_trace("t"))
        # The loop's two branch sites cover almost everything.
        assert profile.coverage(2) > 0.99
        hot = profile.hottest(1)[0]
        assert hot.method_id == program.function("main").func_id

    def test_render_with_function_names(self):
        source = "fn main() { var i = 0; while (i < 10) { i = i + 1; } return i; }"
        program = compile_source(source)
        sink = CollectingSink()
        run_program(program, sink=sink)
        report = render_profile(profile_trace(sink.branch_trace("t")), program)
        assert "main@" in report
        assert "dynamic branches" in report

    def test_render_without_program(self):
        trace = make_trace((3, 7, True))
        report = render_profile(profile_trace(trace))
        assert "m3@7" in report

    def test_loop_branch_bias_reflects_iteration_count(self):
        source = "fn main() { var i = 0; while (i < 99) { i = i + 1; } return i; }"
        program = compile_source(source)
        sink = CollectingSink()
        run_program(program, sink=sink)
        profile = profile_trace(sink.branch_trace("t"))
        # BR_IFZ on the loop condition: not-taken 99 times, taken once.
        (site,) = profile.sites
        assert site.executions == 100
        assert site.bias == pytest.approx(0.99)
