"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import GLOBAL_METRICS
from repro.profiles.synthetic import SyntheticTraceBuilder, make_phased_trace
from repro.vm.compiler import compile_source
from repro.vm.interpreter import Interpreter
from repro.vm.tracing import CollectingSink


@pytest.fixture(autouse=True)
def _reset_global_metrics():
    """Isolate the process-wide registry: no test sees another's counts."""
    GLOBAL_METRICS.reset()
    yield


@pytest.fixture
def phased_trace():
    """A trace with 3 known phases separated by transitions."""
    trace, specs = make_phased_trace(
        num_phases=3, phase_length=1_500, transition_length=200, body_size=10, seed=42
    )
    return trace, specs


@pytest.fixture
def phased_truth(phased_trace):
    """The ground-truth boolean state array for ``phased_trace``."""
    trace, specs = phased_trace
    truth = np.zeros(len(trace), dtype=bool)
    for spec in specs:
        truth[spec.start : spec.end] = True
    return trace, specs, truth


@pytest.fixture
def noisy_phased_trace():
    """Phases with warm-up noise and a repeated pattern."""
    builder = SyntheticTraceBuilder(seed=7)
    builder.add_transition(120)
    first = builder.add_phase(900, body_size=8, noise_rate=0.03)
    builder.add_transition(80)
    builder.add_phase(700, body_size=20)
    builder.add_transition(150)
    builder.add_phase(1_100, pattern_id=first.pattern_id, noise_rate=0.02)
    builder.add_transition(60)
    return builder.build()


def run_minilang(source: str, seed: int = 0x5EED):
    """Compile and run MiniLang source; return (result, sink)."""
    program = compile_source(source)
    sink = CollectingSink()
    result = Interpreter(max_call_depth=10_000).run(program, sink=sink, seed=seed)
    return result, sink


@pytest.fixture
def minilang_runner():
    """Callable fixture: run MiniLang source, returning (result, sink)."""
    return run_minilang
