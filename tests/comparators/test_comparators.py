"""Related-work detector tests."""

import numpy as np
import pytest

from repro.comparators import (
    DasPearsonDetector,
    LuDynamoDetector,
    dhodapkar_smith_config,
    run_das_pearson,
    run_dhodapkar_smith,
    run_lu_dynamo,
)
from repro.comparators.das_pearson import pearson_correlation
from repro.profiles.synthetic import SyntheticTraceBuilder, make_noise_trace
from repro.profiles.trace import BranchTrace


def phased_trace(seed=0):
    builder = SyntheticTraceBuilder(seed=seed)
    builder.add_transition(600)
    builder.add_phase(4_000, body_size=10)
    builder.add_transition(600)
    builder.add_phase(4_000, body_size=40)
    builder.add_transition(600)
    return builder.build()


class TestDhodapkarSmith:
    def test_config_is_fixed_interval(self):
        config = dhodapkar_smith_config(window_size=128)
        assert config.is_fixed_interval
        assert config.threshold == 0.5
        assert config.model.value == "unweighted"

    def test_detects_long_stable_phase(self):
        trace, specs = phased_trace()
        result = run_dhodapkar_smith(trace, window_size=256)
        # The long phases should be mostly P.
        for spec in specs:
            in_phase = result.states[spec.start : spec.end].mean()
            assert in_phase > 0.5, spec


class TestLuDynamo:
    def test_stable_stream_stays_in_phase(self):
        builder = SyntheticTraceBuilder(seed=1)
        builder.add_phase(20_000, body_size=16)
        trace, _ = builder.build()
        result = run_lu_dynamo(trace, window_size=512)
        # After the 7-window warmup, everything is in phase.
        warm = result.states[7 * 512 :]
        assert warm.mean() > 0.95

    def test_behavior_change_breaks_phase(self):
        builder = SyntheticTraceBuilder(seed=2)
        builder.add_phase(8_192, body_size=8)
        builder.add_phase(8_192, body_size=8)  # different pattern ids
        trace, _ = builder.build()
        detector = LuDynamoDetector(window_size=512)
        result = detector.run(trace)
        boundary_region = result.states[8_192 - 512 : 8_192 + 2 * 512]
        assert not boundary_region.all()

    def test_window_averages_recorded(self):
        trace = make_noise_trace(length=2_048, seed=3)
        result = run_lu_dynamo(trace, window_size=256)
        assert len(result.window_averages) == 8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LuDynamoDetector(window_size=0)
        with pytest.raises(ValueError):
            LuDynamoDetector(history=1)


class TestDasPearson:
    def test_pearson_identical(self):
        counts = {1: 4, 2: 2, 3: 1}
        assert pearson_correlation(counts, dict(counts)) == pytest.approx(1.0)

    def test_pearson_disjoint_is_negative_or_low(self):
        left = {1: 5, 2: 5}
        right = {3: 5, 4: 5}
        assert pearson_correlation(left, right) < 0.0

    def test_pearson_degenerate_vectors(self):
        assert pearson_correlation({}, {}) == 1.0
        assert pearson_correlation({1: 2}, {1: 2}) == 1.0

    def test_stable_phase_high_correlation(self):
        # Pearson needs heterogeneous frequencies (real branch profiles
        # are skewed); a perfectly uniform synthetic phase is degenerate.
        import random

        rng = random.Random(4)
        population = list(range(10, 22))
        weights = [2 ** i for i in range(12)]
        elements = rng.choices(population, weights=weights, k=8_192)
        trace = BranchTrace(elements, name="skewed")
        result = run_das_pearson(trace, window_size=512, threshold=0.8)
        assert result.states[512:].mean() > 0.9

    def test_pattern_change_resets_target(self):
        builder = SyntheticTraceBuilder(seed=5)
        builder.add_phase(4_096, body_size=12)
        builder.add_phase(4_096, body_size=12)
        trace, _ = builder.build()
        result = run_das_pearson(trace, window_size=512, threshold=0.8)
        correlations = result.correlations
        # Correlation dips at the pattern change (window index 8).
        assert min(correlations[7:10]) < 0.8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DasPearsonDetector(window_size=0)
        with pytest.raises(ValueError):
            DasPearsonDetector(threshold=2.0)

    def test_states_length(self):
        trace = make_noise_trace(length=1_000, seed=6)
        result = run_das_pearson(trace, window_size=300)
        assert result.states.shape == (1_000,)


class TestDasLocal:
    def test_per_region_detection(self):
        """A phase confined to one method is found even while another
        method's elements interleave as noise."""
        import random
        from repro.comparators import run_das_local
        from repro.profiles.element import encode_element

        rng = random.Random(11)
        # Method 0: stable skewed distribution (a phase).
        phase_pop = [encode_element(0, o, False) for o in range(8)]
        phase_weights = [2 ** i for i in range(8)]
        # Method 1: fresh offsets per draw (pure noise).
        data = []
        noise_offset = 0
        for i in range(8_000):
            if i % 2 == 0:
                data.append(rng.choices(phase_pop, weights=phase_weights, k=1)[0])
            else:
                data.append(encode_element(1, noise_offset % 60_000, False))
                noise_offset += 1
        trace = BranchTrace(data, name="mixed")
        result = run_das_local(trace, window_size=1_024, threshold=0.6)
        method_ids = trace.array >> 17
        phase_states = result.states[method_ids == 0]
        noise_states = result.states[method_ids == 1]
        # The stable region is mostly in phase after warm-up...
        assert phase_states[1_000:].mean() > 0.8
        # ...while the noisy region never is.
        assert noise_states.mean() < 0.2

    def test_small_regions_stay_transition(self):
        from repro.comparators import DasLocalDetector
        from repro.profiles.element import encode_element

        data = [encode_element(0, 1, False)] * 10  # below min_region_elements
        result = DasLocalDetector(min_region_elements=64).run(BranchTrace(data))
        assert not result.states.any()

    def test_empty_trace(self):
        from repro.comparators import run_das_local

        result = run_das_local(BranchTrace([]))
        assert result.states.size == 0
