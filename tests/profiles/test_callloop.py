"""Call-loop trace tests: ordering, statistics, persistence."""

import pytest

from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind


def ev(kind, ident, time):
    return CallLoopEvent(kind, ident, time)


ME, MX = EventKind.METHOD_ENTRY, EventKind.METHOD_EXIT
LE, LX = EventKind.LOOP_ENTRY, EventKind.LOOP_EXIT


class TestConstruction:
    def test_orders_must_be_nondecreasing(self):
        with pytest.raises(ValueError):
            CallLoopTrace([ev(ME, 0, 10), ev(MX, 0, 5)])

    def test_equal_times_allowed(self):
        trace = CallLoopTrace([ev(ME, 0, 0), ev(ME, 1, 0), ev(MX, 1, 0), ev(MX, 0, 0)])
        assert len(trace) == 4

    def test_indexing_and_iteration(self):
        events = [ev(ME, 0, 0), ev(MX, 0, 3)]
        trace = CallLoopTrace(events, name="x", num_branches=3)
        assert trace[0] == events[0]
        assert list(trace) == events
        assert trace.num_branches == 3


class TestStatistics:
    def test_loop_and_method_counts(self):
        trace = CallLoopTrace(
            [ev(ME, 0, 0), ev(LE, 0, 1), ev(LX, 0, 9), ev(LE, 0, 10), ev(LX, 0, 20), ev(MX, 0, 21)]
        )
        assert trace.loop_executions() == 2
        assert trace.method_invocations() == 1

    def test_no_recursion(self):
        trace = CallLoopTrace([ev(ME, 0, 0), ev(ME, 1, 1), ev(MX, 1, 2), ev(MX, 0, 3)])
        assert trace.recursion_roots() == 0

    def test_direct_recursion_single_root(self):
        # main -> f -> f -> f : one root (the outermost f).
        trace = CallLoopTrace(
            [
                ev(ME, 0, 0),
                ev(ME, 1, 1),
                ev(ME, 1, 2),
                ev(ME, 1, 3),
                ev(MX, 1, 4),
                ev(MX, 1, 5),
                ev(MX, 1, 6),
                ev(MX, 0, 7),
            ]
        )
        assert trace.recursion_roots() == 1

    def test_mutual_recursion_root_is_outermost(self):
        # main -> foo -> bar -> foo: the outer foo is the recursion root.
        trace = CallLoopTrace(
            [
                ev(ME, 0, 0),
                ev(ME, 1, 1),  # foo
                ev(ME, 2, 2),  # bar
                ev(ME, 1, 3),  # foo again -> root at outer foo
                ev(MX, 1, 4),
                ev(MX, 2, 5),
                ev(MX, 1, 6),
                ev(MX, 0, 7),
            ]
        )
        assert trace.recursion_roots() == 1

    def test_sequential_recursive_executions_each_count(self):
        events = []
        time = 0
        events.append(ev(ME, 0, time))
        for _ in range(3):  # three separate recursive executions of f
            events.append(ev(ME, 1, time))
            events.append(ev(ME, 1, time + 1))
            events.append(ev(MX, 1, time + 2))
            events.append(ev(MX, 1, time + 3))
            time += 4
        events.append(ev(MX, 0, time))
        assert CallLoopTrace(events).recursion_roots() == 3


class TestPersistence:
    def test_round_trip(self, tmp_path):
        trace = CallLoopTrace(
            [ev(ME, 0, 0), ev(LE, 3, 5), ev(LX, 3, 50), ev(MX, 0, 60)],
            name="persist",
            num_branches=60,
        )
        path = tmp_path / "t.cloop"
        trace.save(path)
        loaded = CallLoopTrace.load(path)
        assert list(loaded) == list(trace)
        assert loaded.name == "persist"
        assert loaded.num_branches == 60

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.cloop"
        path.write_bytes(b"NOTRIGHT" + b"\x00" * 16)
        with pytest.raises(ValueError):
            CallLoopTrace.load(path)


class TestEventHelpers:
    def test_is_entry(self):
        assert ev(ME, 0, 0).is_entry()
        assert ev(LE, 0, 0).is_entry()
        assert not ev(MX, 0, 0).is_entry()

    def test_is_loop(self):
        assert ev(LE, 0, 0).is_loop()
        assert ev(LX, 0, 0).is_loop()
        assert not ev(ME, 0, 0).is_loop()

    def test_str(self):
        assert str(ev(LE, 4, 12)) == "LOOP_ENTRY(4)@12"
