"""BranchTrace container tests."""

import numpy as np
import pytest

from repro.profiles.element import encode_element
from repro.profiles.trace import BranchTrace


def make_trace(values, name="t"):
    return BranchTrace(values, name=name)


class TestConstruction:
    def test_from_list(self):
        trace = make_trace([1, 2, 3])
        assert len(trace) == 3
        assert list(trace) == [1, 2, 3]

    def test_from_numpy(self):
        trace = make_trace(np.array([4, 5], dtype=np.int32))
        assert trace.array.dtype == np.int64

    def test_empty(self):
        trace = make_trace([])
        assert len(trace) == 0
        assert trace.stats().length == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_trace([1, -2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            make_trace(np.zeros((2, 2), dtype=np.int64))

    def test_array_is_read_only(self):
        trace = make_trace([1, 2])
        with pytest.raises(ValueError):
            trace.array[0] = 9

    def test_from_iter(self):
        trace = BranchTrace.from_iter(iter([7, 8, 9]), name="gen")
        assert list(trace) == [7, 8, 9]
        assert trace.name == "gen"


class TestSequenceProtocol:
    def test_indexing(self):
        trace = make_trace([10, 20, 30])
        assert trace[0] == 10
        assert trace[-1] == 30

    def test_slicing_returns_trace(self):
        trace = make_trace([1, 2, 3, 4], name="x")
        sub = trace[1:3]
        assert isinstance(sub, BranchTrace)
        assert list(sub) == [2, 3]
        assert sub.name == "x"

    def test_equality(self):
        assert make_trace([1, 2]) == make_trace([1, 2])
        assert make_trace([1, 2]) != make_trace([2, 1])

    def test_concat(self):
        joined = make_trace([1], name="a").concat(make_trace([2, 3]))
        assert list(joined) == [1, 2, 3]
        assert joined.name == "a"


class TestHashContract:
    def test_hash_ignores_name_and_meta(self):
        # Regression: hash must be a function of the data alone, like
        # __eq__ — equal traces with different names used to hash apart,
        # silently breaking dict/set deduplication.
        plain = make_trace([1, 2, 3], name="a")
        renamed = make_trace([1, 2, 3], name="b")
        assert plain == renamed
        assert hash(plain) == hash(renamed)
        assert len({plain, renamed}) == 1

    def test_hash_usable_as_dict_key(self):
        table = {make_trace([7, 8], name="x"): "hit"}
        assert table[make_trace([7, 8], name="y")] == "hit"

    def test_unequal_lengths_hash_apart(self):
        # A long trace and its 64-element prefix share the hashed data
        # window; the length term must still separate them.
        long = make_trace(list(range(100)))
        prefix = make_trace(list(range(64)))
        assert hash(long) != hash(prefix)


class TestUniqueCache:
    def test_unique_values_and_counts(self):
        trace = make_trace([3, 1, 3, 3, 2])
        values, counts = trace.unique()
        assert values.tolist() == [1, 2, 3]
        assert counts.tolist() == [1, 1, 3]

    def test_unique_is_cached_and_read_only(self):
        trace = make_trace([5, 5, 9])
        values, counts = trace.unique()
        again_values, again_counts = trace.unique()
        assert values is again_values and counts is again_counts
        with pytest.raises(ValueError):
            values[0] = 0
        with pytest.raises(ValueError):
            counts[0] = 0

    def test_stats_and_distinct_share_the_cache(self):
        trace = make_trace([4, 4, 6, 7])
        values, _ = trace.unique()
        assert trace.stats().distinct_elements == len(values)
        assert trace.distinct_elements() == len(values)
        # The cached tuple survives (no recompute replaced it).
        assert trace.unique()[0] is values

    def test_dense_codes_round_trip(self):
        trace = make_trace([10, 3, 10, 99, 3])
        codes, values = trace.dense_codes()
        assert codes.dtype == np.int32
        assert values[codes].tolist() == list(trace)
        assert codes.max() == len(values) - 1

    def test_dense_codes_cached_and_read_only(self):
        trace = make_trace([2, 1, 2])
        codes, values = trace.dense_codes()
        again_codes, again_values = trace.dense_codes()
        assert codes is again_codes and values is again_values
        with pytest.raises(ValueError):
            codes[0] = 0

    def test_dense_codes_empty_trace(self):
        codes, values = make_trace([]).dense_codes()
        assert codes.size == 0 and values.size == 0


class TestStats:
    def test_distinct_and_entropy(self):
        trace = make_trace([5, 5, 5, 5])
        stats = trace.stats()
        assert stats.distinct_elements == 1
        assert stats.entropy_bits == pytest.approx(0.0)
        assert stats.most_common_element == 5
        assert stats.most_common_fraction == pytest.approx(1.0)

    def test_uniform_entropy(self):
        trace = make_trace([0, 1, 2, 3])
        assert trace.stats().entropy_bits == pytest.approx(2.0)

    def test_distinct_methods(self):
        trace = make_trace(
            [encode_element(0, 0, False), encode_element(0, 1, True), encode_element(3, 0, False)]
        )
        assert trace.stats().distinct_methods == 2

    def test_chunks(self):
        trace = make_trace(list(range(10)))
        chunks = list(trace.chunks(4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert chunks[2].tolist() == [8, 9]

    def test_chunks_bad_size(self):
        with pytest.raises(ValueError):
            list(make_trace([1]).chunks(0))

    def test_decoded(self):
        trace = make_trace([encode_element(1, 2, True)])
        decoded = list(trace.decoded())
        assert decoded[0].method_id == 1
        assert decoded[0].offset == 2
        assert decoded[0].taken is True
