"""Trace perturbation tests."""

import numpy as np
import pytest

from repro.profiles.perturb import (
    drop_elements,
    inject_noise,
    sample_elements,
    swap_segments,
)
from repro.profiles.synthetic import make_periodic_trace
from repro.profiles.trace import BranchTrace


@pytest.fixture
def trace():
    return make_periodic_trace(length=2_000, body_size=10, seed=1)[0]


class TestInjectNoise:
    def test_zero_rate_identity(self, trace):
        assert inject_noise(trace, 0.0) is trace

    def test_rate_fraction_replaced(self, trace):
        noisy = inject_noise(trace, 0.25, seed=3)
        changed = int((noisy.array != trace.array).sum())
        assert changed == round(0.25 * len(trace))

    def test_noise_elements_are_fresh(self, trace):
        noisy = inject_noise(trace, 0.1, seed=3)
        original = set(trace.array.tolist())
        injected = set(noisy.array.tolist()) - original
        assert injected  # genuinely new elements
        assert len(injected & original) == 0

    def test_deterministic(self, trace):
        assert inject_noise(trace, 0.1, seed=5) == inject_noise(trace, 0.1, seed=5)
        assert inject_noise(trace, 0.1, seed=5) != inject_noise(trace, 0.1, seed=6)

    def test_bad_rate(self, trace):
        with pytest.raises(ValueError):
            inject_noise(trace, 1.5)


class TestDropAndSample:
    def test_drop_reduces_length(self, trace):
        dropped = drop_elements(trace, 0.3, seed=2)
        assert len(dropped) < len(trace)
        assert len(dropped) == pytest.approx(0.7 * len(trace), rel=0.1)

    def test_drop_preserves_order(self, trace):
        dropped = drop_elements(trace, 0.5, seed=2)
        # Every kept element exists in the original in the same order:
        # verify by checking the drop is a subsequence via searchsorted
        # on positions (all elements come from a small alphabet, so
        # instead just check value membership).
        assert set(dropped.array.tolist()) <= set(trace.array.tolist())

    def test_drop_bad_rate(self, trace):
        with pytest.raises(ValueError):
            drop_elements(trace, 1.0)

    def test_sample_period(self, trace):
        sampled = sample_elements(trace, 4)
        assert len(sampled) == -(-len(trace) // 4)
        assert np.array_equal(sampled.array, trace.array[::4])

    def test_sample_identity(self, trace):
        assert sample_elements(trace, 1) is trace

    def test_sample_bad_period(self, trace):
        with pytest.raises(ValueError):
            sample_elements(trace, 0)


class TestSwapSegments:
    def test_swap(self):
        trace = BranchTrace(list(range(10)))
        swapped = swap_segments(trace, (0, 2), (8, 10))
        assert swapped.array.tolist() == [8, 9, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_length_mismatch(self):
        trace = BranchTrace(list(range(10)))
        with pytest.raises(ValueError):
            swap_segments(trace, (0, 3), (8, 10))

    def test_overlap_rejected(self):
        trace = BranchTrace(list(range(10)))
        with pytest.raises(ValueError):
            swap_segments(trace, (0, 5), (3, 8))

    def test_original_untouched(self):
        trace = BranchTrace(list(range(10)))
        swap_segments(trace, (0, 2), (8, 10))
        assert trace.array.tolist() == list(range(10))
