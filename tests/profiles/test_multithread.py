"""Multi-threaded trace extension tests."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.engine import run_detector
from repro.profiles.multithread import demux, detect_per_thread, interleave
from repro.profiles.synthetic import SyntheticTraceBuilder
from repro.profiles.trace import BranchTrace


def thread_trace(seed, phase_length=3_000, body=10):
    builder = SyntheticTraceBuilder(seed=seed)
    builder.add_transition(300)
    builder.add_phase(phase_length, body_size=body)
    builder.add_transition(300)
    return builder.build()[0]


class TestInterleave:
    def test_round_robin_alternates(self):
        a = BranchTrace([1, 1, 1, 1])
        b = BranchTrace([2, 2, 2, 2])
        merged, owners = interleave({0: a, 1: b}, quantum=1)
        assert merged.array.tolist() == [1, 2, 1, 2, 1, 2, 1, 2]
        assert owners.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_quantum_batches(self):
        a = BranchTrace([1, 1, 1, 1])
        b = BranchTrace([2, 2])
        merged, owners = interleave({0: a, 1: b}, quantum=2)
        assert merged.array.tolist() == [1, 1, 2, 2, 1, 1]

    def test_unequal_lengths_drain(self):
        a = BranchTrace([1] * 10)
        b = BranchTrace([2] * 2)
        merged, owners = interleave({0: a, 1: b}, quantum=1)
        assert len(merged) == 12
        assert (owners == 0).sum() == 10
        assert (owners == 1).sum() == 2

    def test_random_schedule_deterministic(self):
        a = thread_trace(1)[:500]
        b = thread_trace(2)[:500]
        first = interleave({0: a, 1: b}, schedule="random", seed=9)
        second = interleave({0: a, 1: b}, schedule="random", seed=9)
        assert first[0] == second[0]
        assert np.array_equal(first[1], second[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave({0: BranchTrace([1])}, quantum=0)
        with pytest.raises(ValueError):
            interleave({0: BranchTrace([1])}, schedule="fifo")

    def test_empty(self):
        merged, owners = interleave({})
        assert len(merged) == 0
        assert owners.size == 0


class TestDemux:
    def test_round_trip(self):
        a = thread_trace(3)[:800]
        b = thread_trace(4)[:800]
        merged, owners = interleave({0: a, 1: b}, quantum=3)
        split = demux(merged, owners)
        assert split[0] == a
        assert split[1] == b

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            demux(BranchTrace([1, 2]), np.array([0]))


class TestPerThreadDetection:
    def test_demux_detection_beats_global_on_misaligned_phases(self):
        """When one thread phases while the other is in transition, the
        global detector's windows mix a stable working set with fresh
        noise and the phase is missed; per-thread detection is immune.
        (When both threads phase *simultaneously*, the union working
        set is itself stable and global detection survives — alignment
        is exactly what a real scheduler does not guarantee.)"""
        # Thread A phases early; thread B phases late.
        builder_a = SyntheticTraceBuilder(seed=5)
        builder_a.add_transition(300)
        builder_a.add_phase(3_000, body_size=10)
        builder_a.add_transition(3_300)
        a, _ = builder_a.build()
        builder_b = SyntheticTraceBuilder(seed=6)
        builder_b.add_transition(3_300)
        builder_b.add_phase(3_000, body_size=10)
        builder_b.add_transition(300)
        b, _ = builder_b.build()

        merged, owners = interleave({0: a, 1: b}, quantum=1)
        config = DetectorConfig(
            cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )

        per_thread_states = detect_per_thread(merged, owners, config)
        global_states = run_detector(merged, config).states

        truth = np.zeros(len(merged), dtype=bool)
        for tid, start in ((0, 300), (1, 3_300)):
            thread_truth = np.zeros(6_600, dtype=bool)
            thread_truth[start : start + 3_000] = True
            truth[np.flatnonzero(owners == tid)] = thread_truth

        per_thread_accuracy = (per_thread_states == truth).mean()
        global_accuracy = (global_states == truth).mean()
        assert per_thread_accuracy > 0.9
        assert per_thread_accuracy > global_accuracy + 0.2

    def test_coarse_quantum_is_gentler_on_global_detection(self):
        """With a huge scheduling quantum the merged trace is nearly
        sequential, so global detection recovers."""
        a = thread_trace(7)
        b = thread_trace(8)
        config = DetectorConfig(cw_size=100, threshold=0.6)
        fine, _ = interleave({0: a, 1: b}, quantum=1)
        coarse, _ = interleave({0: a, 1: b}, quantum=2_000)
        fine_phases = len(run_detector(fine, config).detected_phases)
        coarse_phases = len(run_detector(coarse, config).detected_phases)
        assert coarse_phases >= max(fine_phases, 1)

    def test_per_thread_config_override(self):
        a = thread_trace(9)[:2_000]
        b = thread_trace(10)[:2_000]
        merged, owners = interleave({0: a, 1: b})
        base = DetectorConfig(cw_size=50, threshold=0.6)
        never = DetectorConfig(cw_size=50, threshold=1.0)
        states = detect_per_thread(merged, owners, base, configs={1: never})
        # Thread 1 can never enter a phase at threshold 1.0+epsilon...
        # (threshold 1.0 is reachable by perfect similarity, so instead
        # just check the override was applied by comparing to uniform).
        uniform = detect_per_thread(merged, owners, base)
        assert states[np.flatnonzero(owners == 0)].tolist() == \
            uniform[np.flatnonzero(owners == 0)].tolist()
