"""Branch alphabet interning tests."""

from repro.profiles.alphabet import BranchAlphabet
from repro.profiles.element import decode_element


class TestAlphabet:
    def test_same_label_same_element(self):
        alphabet = BranchAlphabet()
        a1 = alphabet.element("site-a", taken=True)
        a2 = alphabet.element("site-a", taken=True)
        assert a1 == a2

    def test_taken_bit_distinguishes(self):
        alphabet = BranchAlphabet()
        taken = alphabet.element("s", taken=True)
        not_taken = alphabet.element("s", taken=False)
        assert taken != not_taken
        assert decode_element(taken).site == decode_element(not_taken).site

    def test_first_seen_order_is_stable(self):
        def build():
            alphabet = BranchAlphabet()
            return [alphabet.element(label, False) for label in ("x", "y", "z", "x")]

        assert build() == build()

    def test_method_grouping(self):
        alphabet = BranchAlphabet()
        a = alphabet.element(("f", 0), False, method="f")
        b = alphabet.element(("f", 1), False, method="f")
        c = alphabet.element(("g", 0), False, method="g")
        assert decode_element(a).method_id == decode_element(b).method_id
        assert decode_element(a).method_id != decode_element(c).method_id
        assert decode_element(a).offset == 0
        assert decode_element(b).offset == 1

    def test_len_and_contains(self):
        alphabet = BranchAlphabet()
        alphabet.site("one")
        alphabet.site("two")
        alphabet.site("one")
        assert len(alphabet) == 2
        assert "one" in alphabet
        assert "three" not in alphabet
        assert list(alphabet) == ["one", "two"]

    def test_method_name_lookup(self):
        alphabet = BranchAlphabet()
        mid = alphabet.method_id("main")
        assert alphabet.method_name(mid) == "main"
        assert alphabet.num_methods == 1
