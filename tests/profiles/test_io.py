"""Trace persistence tests (text, binary, streaming)."""

import numpy as np
import pytest

from repro.profiles.io import (
    TraceFormatError,
    read_trace,
    read_trace_binary,
    read_trace_text,
    stream_trace,
    write_trace,
    write_trace_binary,
    write_trace_text,
)
from repro.profiles.trace import BranchTrace


@pytest.fixture
def trace():
    return BranchTrace(list(range(100, 400, 3)), name="roundtrip")


class TestTextFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_text(trace, path)
        loaded = read_trace_text(path)
        assert loaded == trace
        assert loaded.name == "roundtrip"

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.trace"
        write_trace_text(BranchTrace([], name="empty"), path)
        loaded = read_trace_text(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not a trace\n1\n2\n")
        with pytest.raises(TraceFormatError):
            read_trace_text(path)

    def test_length_mismatch(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_text("# repro-branch-trace v1\n# name: x\n# length: 5\n1\n2\n")
        with pytest.raises(TraceFormatError):
            read_trace_text(path)

    def test_human_readable(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace_text(trace, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#")
        assert lines[3] == "100"

    def test_no_trailing_newline(self, tmp_path):
        # The streamed reader must parse a body whose last line is not
        # newline-terminated (the old loadtxt/seek path was fragile here).
        path = tmp_path / "nn.trace"
        path.write_text("# repro-branch-trace v1\n# name: x\n# length: 3\n5\n6\n7")
        loaded = read_trace_text(path)
        assert list(loaded) == [5, 6, 7]
        assert loaded.name == "x"

    def test_trailing_blank_lines(self, tmp_path):
        path = tmp_path / "bl.trace"
        path.write_text("# repro-branch-trace v1\n# length: 2\n1\n2\n\n\n")
        assert list(read_trace_text(path)) == [1, 2]

    def test_invalid_element(self, tmp_path):
        path = tmp_path / "iv.trace"
        path.write_text("# repro-branch-trace v1\n1\nbogus\n")
        with pytest.raises(TraceFormatError, match="invalid trace element"):
            read_trace_text(path)


class TestBinaryFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.btrace"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert loaded == trace
        assert loaded.name == "roundtrip"

    def test_empty(self, tmp_path):
        path = tmp_path / "e.btrace"
        write_trace_binary(BranchTrace([]), path)
        assert len(read_trace_binary(path)) == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.btrace"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 32)
        with pytest.raises(TraceFormatError):
            read_trace_binary(path)

    def test_truncated(self, trace, tmp_path):
        path = tmp_path / "t.btrace"
        write_trace_binary(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(TraceFormatError):
            read_trace_binary(path)

    def test_unicode_name(self, tmp_path):
        path = tmp_path / "u.btrace"
        write_trace_binary(BranchTrace([1], name="bénch"), path)
        assert read_trace_binary(path).name == "bénch"


class TestCorruptBinaryHeaders:
    """A malformed header must raise TraceFormatError, never MemoryError."""

    def _corrupt_length(self, trace, tmp_path, declared):
        path = tmp_path / "t.btrace"
        write_trace_binary(trace, path)
        data = bytearray(path.read_bytes())
        name_len = int.from_bytes(data[8:12], "little")
        offset = 12 + name_len
        data[offset : offset + 8] = declared.to_bytes(8, "little")
        path.write_bytes(bytes(data))
        return path

    def test_oversized_declared_length(self, trace, tmp_path):
        # The seed bug: a huge declared length drove an 8-exabyte read.
        path = self._corrupt_length(trace, tmp_path, 0x0C00_0000_0000_0001)
        with pytest.raises(TraceFormatError, match="declared length"):
            read_trace_binary(path)

    def test_slightly_oversized_declared_length(self, trace, tmp_path):
        path = self._corrupt_length(trace, tmp_path, len(trace) + 1)
        with pytest.raises(TraceFormatError):
            read_trace_binary(path)

    def test_oversized_name_length(self, tmp_path):
        path = tmp_path / "n.btrace"
        path.write_bytes(b"RPTRACE1" + (0xFFFF_FFFF).to_bytes(4, "little"))
        with pytest.raises(TraceFormatError, match="name length"):
            read_trace_binary(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "h.btrace"
        path.write_bytes(b"RPTRACE1\x02")
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace_binary(path)

    def test_header_missing_length_field(self, tmp_path):
        path = tmp_path / "h2.btrace"
        path.write_bytes(b"RPTRACE1" + (2).to_bytes(4, "little") + b"ab\x01\x02")
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_trace_binary(path)

    def test_undecodable_name(self, tmp_path):
        path = tmp_path / "u.btrace"
        path.write_bytes(
            b"RPTRACE1" + (2).to_bytes(4, "little") + b"\xff\xfe"
            + (0).to_bytes(8, "little")
        )
        with pytest.raises(TraceFormatError, match="undecodable"):
            read_trace_binary(path)

    def test_stream_oversized_declared_length(self, trace, tmp_path):
        path = self._corrupt_length(trace, tmp_path, 1 << 56)
        with pytest.raises(TraceFormatError, match="declared length"):
            list(stream_trace(path))


class TestDispatchAndStreaming:
    def test_extension_dispatch(self, trace, tmp_path):
        binary = tmp_path / "a.btrace"
        text = tmp_path / "a.trace"
        write_trace(trace, binary)
        write_trace(trace, text)
        assert read_trace(binary) == trace
        assert read_trace(text) == trace

    def test_stream_matches_whole(self, trace, tmp_path):
        path = tmp_path / "s.btrace"
        write_trace_binary(trace, path)
        streamed = np.concatenate(list(stream_trace(path, chunk_size=7)))
        assert np.array_equal(streamed, trace.array)

    def test_stream_chunk_sizes(self, trace, tmp_path):
        path = tmp_path / "s.btrace"
        write_trace_binary(trace, path)
        chunks = list(stream_trace(path, chunk_size=16))
        assert all(len(c) <= 16 for c in chunks)
        assert sum(len(c) for c in chunks) == len(trace)

    def test_stream_bad_chunk_size(self, trace, tmp_path):
        path = tmp_path / "s.btrace"
        write_trace_binary(trace, path)
        with pytest.raises(ValueError):
            list(stream_trace(path, chunk_size=0))
