"""Synthetic trace generator tests."""

import numpy as np
import pytest

from repro.profiles.synthetic import (
    PhaseSpec,
    SyntheticTraceBuilder,
    make_noise_trace,
    make_periodic_trace,
    make_phased_trace,
)


class TestBuilder:
    def test_specs_cover_phases(self):
        builder = SyntheticTraceBuilder(seed=1)
        builder.add_transition(50)
        spec = builder.add_phase(300, body_size=5)
        trace, specs = builder.build()
        assert specs == [spec]
        assert spec.start == 50
        assert spec.length == 300
        assert spec.end == 350
        assert len(trace) == 350

    def test_phase_is_periodic(self):
        builder = SyntheticTraceBuilder(seed=2)
        spec = builder.add_phase(100, body_size=4)
        trace, _ = builder.build()
        data = trace.array
        assert np.array_equal(data[:4], data[4:8])
        assert len(np.unique(data)) == 4

    def test_pattern_reuse(self):
        builder = SyntheticTraceBuilder(seed=3)
        first = builder.add_phase(40, body_size=4)
        builder.add_transition(10)
        second = builder.add_phase(40, pattern_id=first.pattern_id)
        trace, specs = builder.build()
        assert specs[0].pattern_id == specs[1].pattern_id
        data = trace.array
        assert np.array_equal(data[first.start : first.start + 4],
                              data[second.start : second.start + 4])

    def test_transition_elements_unique(self):
        builder = SyntheticTraceBuilder(seed=4)
        builder.add_transition(200)
        trace, _ = builder.build()
        assert len(np.unique(trace.array)) == 200

    def test_noise_rate_injects_fresh_elements(self):
        builder = SyntheticTraceBuilder(seed=5)
        builder.add_phase(1_000, body_size=5, noise_rate=0.2)
        trace, _ = builder.build()
        distinct = len(np.unique(trace.array))
        assert distinct > 5  # noise beyond the body
        assert distinct < 1_000  # but still mostly the body

    def test_invalid_arguments(self):
        builder = SyntheticTraceBuilder()
        with pytest.raises(ValueError):
            builder.add_phase(0)
        with pytest.raises(ValueError):
            builder.add_phase(10, noise_rate=1.5)
        with pytest.raises(ValueError):
            builder.add_transition(-1)
        with pytest.raises(ValueError):
            builder.new_pattern(0)

    def test_deterministic_across_builds(self):
        def build():
            builder = SyntheticTraceBuilder(seed=9)
            builder.add_transition(30)
            builder.add_phase(100, body_size=6, noise_rate=0.1)
            return builder.build()[0]

        assert build() == build()


class TestConvenienceGenerators:
    def test_make_phased_trace_layout(self):
        trace, specs = make_phased_trace(
            num_phases=3, phase_length=200, transition_length=50
        )
        assert len(specs) == 3
        assert len(trace) == 3 * 200 + 4 * 50
        assert specs[0].start == 50
        assert all(s.length == 200 for s in specs)

    def test_make_noise_trace(self):
        trace = make_noise_trace(length=123, seed=0)
        assert len(trace) == 123
        assert len(np.unique(trace.array)) == 123

    def test_make_periodic_trace(self):
        trace, specs = make_periodic_trace(length=64, body_size=8)
        assert len(specs) == 1
        assert specs[0].length == 64
        assert len(np.unique(trace.array)) == 8
