"""Zero-copy trace loading: mmap-backed reads and .bcodes sidecars."""

import numpy as np
import pytest

from repro.profiles.io import (
    CODES_MAGIC,
    TraceFormatError,
    codes_path_for,
    ensure_codes_sidecar,
    mmap_enabled,
    read_codes_sidecar,
    read_trace_binary,
    trace_content_hash,
    write_codes_sidecar,
    write_trace_binary,
)
from repro.profiles.trace import BranchTrace


@pytest.fixture
def trace():
    rng = np.random.default_rng(7)
    return BranchTrace(rng.integers(0, 40, size=2_000), name="zc")


@pytest.fixture
def btrace_path(trace, tmp_path):
    path = tmp_path / "zc.btrace"
    write_trace_binary(trace, path)
    return path


class TestMmapRead:
    def test_equals_heap_read(self, trace, btrace_path):
        mapped = read_trace_binary(btrace_path, mmap=True)
        heap = read_trace_binary(btrace_path, mmap=False)
        assert mapped == heap == trace
        assert mapped.name == trace.name

    def test_backed_by_memmap(self, btrace_path):
        mapped = read_trace_binary(btrace_path, mmap=True)
        assert isinstance(mapped.array.base, np.memmap) or isinstance(
            mapped.array, np.memmap
        )

    def test_read_only(self, btrace_path):
        mapped = read_trace_binary(btrace_path, mmap=True)
        assert not mapped.array.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mapped.array[0] = 1

    def test_hash_and_stats_work(self, trace, btrace_path):
        mapped = read_trace_binary(btrace_path, mmap=True)
        assert hash(mapped) == hash(trace)
        assert mapped.stats() == trace.stats()
        assert np.array_equal(
            np.concatenate(list(mapped.chunks(97))), trace.array
        )

    def test_empty_trace_mmap(self, tmp_path):
        path = tmp_path / "e.btrace"
        write_trace_binary(BranchTrace([], name="empty"), path)
        mapped = read_trace_binary(path, mmap=True)
        assert len(mapped) == 0
        assert mapped.name == "empty"

    def test_mmap_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MMAP", raising=False)
        assert mmap_enabled()
        for off in ("0", "false", "off", "no", " 0 "):
            monkeypatch.setenv("REPRO_MMAP", off)
            assert not mmap_enabled()
        monkeypatch.setenv("REPRO_MMAP", "1")
        assert mmap_enabled()


class TestCodesSidecar:
    def test_round_trip(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        assert codes_path.suffix == ".bcodes"
        write_codes_sidecar(trace, codes_path)
        codes, values, counts = read_codes_sidecar(codes_path, trace)
        expect_codes, expect_values = trace.dense_codes()
        assert np.array_equal(codes, expect_codes)
        assert np.array_equal(values, expect_values)
        assert np.array_equal(counts, trace.unique()[1])

    def test_mmap_round_trip(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        codes, values, counts = read_codes_sidecar(codes_path, trace, mmap=True)
        assert np.array_equal(codes, trace.dense_codes()[0])
        assert not codes.flags.writeable

    def test_adoption_matches_computation(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        fresh = read_trace_binary(btrace_path, mmap=True)
        adopted = read_codes_sidecar(codes_path, fresh, mmap=True)
        fresh.adopt_dense_codes(*adopted)
        assert np.array_equal(fresh.dense_codes()[0], trace.dense_codes()[0])
        assert fresh.stats() == trace.stats()
        code_list, n_codes = fresh.dense_code_list()
        expect_list, expect_n = trace.dense_code_list()
        assert code_list == expect_list and n_codes == expect_n

    def test_stale_for_different_trace(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        other = BranchTrace(trace.array[::-1].copy(), name="zc")
        with pytest.raises(TraceFormatError, match="content hash mismatch"):
            read_codes_sidecar(codes_path, other)

    def test_length_mismatch(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        shorter = BranchTrace(trace.array[:-1].copy())
        with pytest.raises(TraceFormatError, match="elements"):
            read_codes_sidecar(codes_path, shorter)

    def test_bad_magic(self, trace, tmp_path):
        path = tmp_path / "bad.bcodes"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_codes_sidecar(path, trace)

    def test_unsupported_version(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        data = bytearray(codes_path.read_bytes())
        data[len(CODES_MAGIC) : len(CODES_MAGIC) + 4] = (99).to_bytes(4, "little")
        codes_path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="version"):
            read_codes_sidecar(codes_path, trace)

    def test_truncated(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        write_codes_sidecar(trace, codes_path)
        data = codes_path.read_bytes()
        codes_path.write_bytes(data[:-4])
        with pytest.raises(TraceFormatError):
            read_codes_sidecar(codes_path, trace)

    def test_content_hash_is_storage_independent(self, trace, btrace_path):
        mapped = read_trace_binary(btrace_path, mmap=True)
        assert trace_content_hash(mapped) == trace_content_hash(trace)


class TestEnsureCodesSidecar:
    def test_builds_then_loads(self, trace, btrace_path):
        assert ensure_codes_sidecar(trace, btrace_path) is False
        assert codes_path_for(btrace_path).exists()
        fresh = read_trace_binary(btrace_path)
        assert ensure_codes_sidecar(fresh, btrace_path) is True
        assert np.array_equal(fresh.dense_codes()[0], trace.dense_codes()[0])

    def test_regenerates_stale_sidecar(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        ensure_codes_sidecar(trace, btrace_path)
        # Corrupt the stored hash: the stale sidecar must be rebuilt
        # transparently, never adopted.
        data = bytearray(codes_path.read_bytes())
        offset = len(CODES_MAGIC) + 4
        data[offset] ^= 0xFF
        codes_path.write_bytes(bytes(data))
        fresh = read_trace_binary(btrace_path)
        assert ensure_codes_sidecar(fresh, btrace_path) is False
        assert ensure_codes_sidecar(read_trace_binary(btrace_path), btrace_path)

    def test_regenerates_torn_sidecar(self, trace, btrace_path):
        codes_path = codes_path_for(btrace_path)
        ensure_codes_sidecar(trace, btrace_path)
        codes_path.write_bytes(codes_path.read_bytes()[:10])
        fresh = read_trace_binary(btrace_path)
        assert ensure_codes_sidecar(fresh, btrace_path) is False
        assert np.array_equal(fresh.dense_codes()[0], trace.dense_codes()[0])

    def test_unwritable_dir_still_computes(self, trace, tmp_path):
        target = tmp_path / "ro"
        target.mkdir()
        btrace = target / "t.btrace"
        write_trace_binary(trace, btrace)
        target.chmod(0o500)
        try:
            fresh = read_trace_binary(btrace)
            assert ensure_codes_sidecar(fresh, btrace) is False
            assert np.array_equal(fresh.dense_codes()[0], trace.dense_codes()[0])
        finally:
            target.chmod(0o700)
