"""Profile element encoding tests."""

import pytest

from repro.profiles.element import (
    MAX_METHOD_ID,
    MAX_OFFSET,
    ProfileElement,
    decode_element,
    encode_element,
)


class TestEncodeDecode:
    def test_round_trip_simple(self):
        element = encode_element(3, 17, True)
        decoded = decode_element(element)
        assert decoded == ProfileElement(method_id=3, offset=17, taken=True)

    def test_round_trip_not_taken(self):
        decoded = decode_element(encode_element(5, 0, False))
        assert decoded.method_id == 5
        assert decoded.offset == 0
        assert decoded.taken is False

    def test_zero_element(self):
        assert encode_element(0, 0, False) == 0
        assert decode_element(0) == ProfileElement(0, 0, False)

    def test_taken_bit_is_lsb(self):
        taken = encode_element(1, 1, True)
        not_taken = encode_element(1, 1, False)
        assert taken == not_taken + 1

    def test_distinct_sites_distinct_elements(self):
        seen = {
            encode_element(m, o, t)
            for m in range(4)
            for o in range(4)
            for t in (False, True)
        }
        assert len(seen) == 4 * 4 * 2

    def test_max_values_round_trip(self):
        element = encode_element(MAX_METHOD_ID, MAX_OFFSET, True)
        decoded = decode_element(element)
        assert decoded.method_id == MAX_METHOD_ID
        assert decoded.offset == MAX_OFFSET
        assert decoded.taken is True

    def test_method_id_out_of_range(self):
        with pytest.raises(ValueError):
            encode_element(MAX_METHOD_ID + 1, 0, False)
        with pytest.raises(ValueError):
            encode_element(-1, 0, False)

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            encode_element(0, MAX_OFFSET + 1, False)
        with pytest.raises(ValueError):
            encode_element(0, -1, False)

    def test_decode_negative_rejected(self):
        with pytest.raises(ValueError):
            decode_element(-5)


class TestProfileElement:
    def test_encode_method(self):
        original = ProfileElement(method_id=9, offset=250, taken=False)
        assert decode_element(original.encode()) == original

    def test_site_ignores_taken(self):
        taken = decode_element(encode_element(2, 8, True))
        not_taken = decode_element(encode_element(2, 8, False))
        assert taken.site == not_taken.site

    def test_str_format(self):
        assert str(ProfileElement(1, 2, True)) == "m1@2:T"
        assert str(ProfileElement(1, 2, False)) == "m1@2:N"
