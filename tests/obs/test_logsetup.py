"""Logging setup: levels, idempotence, and library silence by default."""

import io
import logging

from repro.obs.logsetup import progress_logger, setup_logging


def fresh_root():
    """Strip handlers installed by earlier tests (logger objects are global)."""
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    return root


def test_default_verbosity_is_info():
    fresh_root()
    stream = io.StringIO()
    logger = setup_logging(stream=stream)
    assert logger.level == logging.INFO
    progress_logger("sweep").info("hello %d", 7)
    progress_logger("sweep").debug("invisible")
    assert stream.getvalue() == "[repro.sweep] hello 7\n"


def test_verbose_enables_debug_and_quiet_suppresses_info():
    fresh_root()
    stream = io.StringIO()
    setup_logging(verbosity=1, stream=stream)
    progress_logger("x").debug("dbg")
    assert "dbg" in stream.getvalue()

    fresh_root()
    stream = io.StringIO()
    setup_logging(verbosity=-1, stream=stream)
    progress_logger("x").info("quiet info")
    progress_logger("x").warning("warn")
    assert "quiet info" not in stream.getvalue()
    assert "warn" in stream.getvalue()


def test_setup_is_idempotent():
    fresh_root()
    stream = io.StringIO()
    setup_logging(stream=stream)
    setup_logging(stream=stream)
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    progress_logger("y").info("once")
    assert stream.getvalue().count("once") == 1


def test_second_call_adjusts_level_in_place():
    fresh_root()
    stream = io.StringIO()
    setup_logging(verbosity=0, stream=stream)
    setup_logging(verbosity=-1, stream=stream)
    progress_logger("z").info("hidden")
    assert stream.getvalue() == ""


def test_progress_logger_namespacing():
    assert progress_logger("sweep").name == "repro.sweep"
    assert progress_logger("repro.sweep").name == "repro.sweep"
    assert progress_logger("repro").name == "repro"


def test_library_does_not_propagate_to_root_after_setup():
    fresh_root()
    setup_logging(stream=io.StringIO())
    assert logging.getLogger("repro").propagate is False
