"""Run manifests: build, atomic write, load, summary, and diff."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    diff_manifests,
    load_manifest,
    manifest_path_for,
    summarize_manifest,
    write_manifest,
)


def sample_manifest(**overrides):
    base = dict(
        profile="quick",
        benchmarks=["db", "jlex"],
        fingerprints={"db": "aaa", "jlex": "bbb"},
        grid_fingerprint="deadbeef0123",
        mpl_nominals=[10_000],
        jobs=2,
        elapsed_seconds=12.5,
        records_evaluated=540,
        records_total=540,
        workers=[
            {"pid": 11, "chunks": 3, "configs": 20, "records": 300,
             "wall_seconds": 6.0, "peak_bytes": None},
            {"pid": 12, "chunks": 2, "configs": 16, "records": 240,
             "wall_seconds": 5.5, "peak_bytes": 2048},
        ],
        metrics={"counters": {"io.trace_reads": 4}, "gauges": {},
                 "timings": {"sweep.benchmark_seconds":
                             {"count": 2, "total": 11.5,
                              "min": 5.5, "max": 6.0}}},
        chunk_profiles=[{"label": "db:chunk-0", "wall_seconds": 0.5,
                         "peak_bytes": 4096}],
    )
    base.update(overrides)
    return build_manifest(**base)


class TestBuildAndPersist:
    def test_path_derivation(self, tmp_path):
        cache = tmp_path / "sweep-default.jsonl"
        assert manifest_path_for(cache) == tmp_path / "sweep-default.manifest.json"

    def test_round_trip(self, tmp_path):
        manifest = sample_manifest()
        path = write_manifest(manifest, tmp_path / "run.manifest.json")
        assert load_manifest(path) == manifest
        assert manifest["version"] == MANIFEST_VERSION

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = write_manifest(sample_manifest(), tmp_path / "m.json")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "not.json"
        path.write_text(json.dumps({"hello": 1}), encoding="utf-8")
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(path)

    def test_load_rejects_newer_version(self, tmp_path):
        manifest = sample_manifest()
        manifest["version"] = MANIFEST_VERSION + 1
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="newer"):
            load_manifest(path)

    def test_manifest_is_json_safe(self):
        manifest = sample_manifest()
        assert json.loads(json.dumps(manifest)) == manifest


class TestSummary:
    def test_summary_confirms_worker_invariant(self):
        text = summarize_manifest(sample_manifest())
        assert "profile 'quick'" in text
        assert "worker records account for all 540 evaluated records" in text
        assert "io.trace_reads = 4" in text
        assert "db:chunk-0" in text

    def test_summary_flags_broken_invariant(self):
        manifest = sample_manifest(records_evaluated=999)
        text = summarize_manifest(manifest)
        assert "DO NOT ACCOUNT FOR" in text

    def test_summary_without_workers_or_profiles(self):
        manifest = sample_manifest(workers=[], chunk_profiles=None)
        text = summarize_manifest(manifest)
        assert "workers:" not in text
        assert "chunk profiles:" not in text


class TestDiff:
    def test_identical_manifests_diff_clean(self):
        manifest = sample_manifest()
        assert "(no differences)" in diff_manifests(manifest, manifest)

    def test_diff_reports_changed_fields(self):
        old = sample_manifest()
        new = sample_manifest(
            jobs=4,
            records_evaluated=600,
            fingerprints={"db": "aaa", "jlex": "ccc"},
            metrics={"counters": {"io.trace_reads": 9}, "gauges": {},
                     "timings": {}},
        )
        text = diff_manifests(old, new)
        assert "jobs: 2 -> 4" in text
        assert "records.evaluated: 540 -> 600" in text
        assert "counter io.trace_reads: 4 -> 9" in text
        assert "fingerprint jlex: bbb -> ccc" in text
