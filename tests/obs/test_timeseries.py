"""FlightRecorder: ring sampling, counter deltas, and the JSONL spool."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    FLIGHT_RECORD_VERSION,
    FlightRecordError,
    FlightRecorder,
    read_flight_record,
)


class TestSampling:
    def test_first_sample_deltas_count_from_zero(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(7)
        recorder = FlightRecorder(registry, interval=0.1)
        sample = recorder.sample()
        assert sample["seq"] == 1
        assert sample["deltas"] == {"events": 7}

    def test_deltas_are_per_interval_not_cumulative(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry, interval=0.1)
        registry.counter("events").inc(10)
        recorder.sample()
        registry.counter("events").inc(3)
        sample = recorder.sample()
        assert sample["deltas"] == {"events": 3}
        assert sample["snapshot"]["counters"]["events"] == 13

    def test_unchanged_counters_are_omitted_from_deltas(self):
        registry = MetricsRegistry()
        registry.counter("static").inc()
        recorder = FlightRecorder(registry, interval=0.1)
        recorder.sample()
        sample = recorder.sample()
        assert "static" not in sample["deltas"]

    def test_summed_deltas_equal_final_counters(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry, interval=0.1)
        for increment in (5, 0, 12, 3):
            registry.counter("events").inc(increment)
            recorder.sample()
        total = sum(
            s["deltas"].get("events", 0) for s in recorder.samples
        )
        assert total == registry.counter("events").value == 20

    def test_ring_is_bounded_and_tail_is_newest(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry, interval=0.1, capacity=3)
        for _ in range(10):
            recorder.sample()
        assert len(recorder.samples) == 3
        tail = recorder.tail(2)
        assert [s["seq"] for s in tail] == [9, 10]
        assert recorder.tail(0) == []

    def test_rates_divide_deltas_by_elapsed(self):
        sample = {"elapsed": 2.0, "deltas": {"events": 10}}
        assert FlightRecorder.rates(sample) == {"events": 5.0}
        assert FlightRecorder.rates({"elapsed": 0.0, "deltas": {"x": 1}}) == {}

    def test_rejects_bad_interval_and_capacity(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            FlightRecorder(registry, interval=0.0)
        with pytest.raises(ValueError):
            FlightRecorder(registry, interval=1.0, capacity=0)


class TestSpool:
    def test_spool_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(registry, interval=0.5, spool_path=path)
        registry.counter("events").inc(4)
        recorder.sample()
        registry.counter("events").inc(2)
        recorder.close(final_sample=True)
        header, samples = read_flight_record(path)
        assert header["flight_record"] == FLIGHT_RECORD_VERSION
        assert header["interval"] == 0.5
        assert [s["seq"] for s in samples] == [1, 2]
        assert sum(s["deltas"].get("events", 0) for s in samples) == 6

    def test_close_without_final_sample(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "flight.jsonl"
        with FlightRecorder(registry, interval=1.0, spool_path=path) as recorder:
            recorder.sample()
        _, samples = read_flight_record(path)
        assert len(samples) == 1

    def test_spooled_lines_reload_bit_exact(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.histogram("h").observe(0.002)
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(registry, interval=1.0, spool_path=path)
        in_memory = [recorder.sample(), recorder.sample()]
        recorder.close(final_sample=False)
        _, reloaded = read_flight_record(path)
        assert reloaded == json.loads(json.dumps(in_memory))

    def test_torn_final_line_is_dropped(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(registry, interval=1.0, spool_path=path)
        recorder.sample()
        recorder.sample()
        recorder.close(final_sample=False)
        content = path.read_text(encoding="utf-8")
        path.write_text(content + '{"seq": 3, "tor', encoding="utf-8")
        _, samples = read_flight_record(path)
        assert [s["seq"] for s in samples] == [1, 2]

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text(
            '{"flight_record": 1, "interval": 1.0}\n'
            '{"seq": 1, "tor\n'
            '{"seq": 2, "t": 0, "uptime": 1, "elapsed": 1, "deltas": {}}\n',
            encoding="utf-8",
        )
        with pytest.raises(FlightRecordError):
            read_flight_record(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text('{"seq": 1}\n', encoding="utf-8")
        with pytest.raises(FlightRecordError):
            read_flight_record(path)

    def test_newer_version_raises(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text(
            json.dumps({"flight_record": FLIGHT_RECORD_VERSION + 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(FlightRecordError):
            read_flight_record(path)

    def test_empty_record_raises(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(FlightRecordError):
            read_flight_record(path)
