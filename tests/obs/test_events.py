"""Event schema, JSONL round-trip, torn-write tolerance, and replay."""

import json

import pytest

from repro.core.config import (
    AnalyzerKind,
    DetectorConfig,
    ModelKind,
    TrailingPolicy,
)
from repro.core.detector import PhaseDetector
from repro.core.engine import run_detector
from repro.obs.bus import (
    EventBus,
    EventTraceError,
    JsonlSink,
    MemorySink,
    NullSink,
    read_events,
)
from repro.obs.events import (
    EVENT_TYPES,
    EventSchemaError,
    replay_phases,
    replay_transitions,
    validate_event,
)
from repro.profiles.synthetic import make_phased_trace

TRACE, _ = make_phased_trace(
    num_phases=3, phase_length=900, transition_length=150, body_size=9, seed=5
)
CONFIG = DetectorConfig(cw_size=60, skip_factor=5, threshold=0.55,
                        trailing=TrailingPolicy.ADAPTIVE)


def run_with_memory(trace=TRACE, config=CONFIG):
    sink = MemorySink()
    result = run_detector(trace, config, observer=sink)
    return result, sink.events


class TestSchema:
    def test_every_emitted_event_validates(self):
        _, events = run_with_memory()
        assert events, "expected a non-empty event stream"
        for event in events:
            validate_event(event)

    def test_all_documented_types_are_emitted(self):
        _, events = run_with_memory()
        assert {e["ev"] for e in events} == set(EVENT_TYPES)

    def test_missing_base_field_rejected(self):
        with pytest.raises(EventSchemaError, match="missing required field"):
            validate_event({"ev": "run_end", "phases": 1, "elements": 2})

    def test_unknown_type_rejected(self):
        with pytest.raises(EventSchemaError, match="unknown event type"):
            validate_event({"ev": "nope", "step": 0})

    def test_missing_payload_field_rejected(self):
        with pytest.raises(EventSchemaError, match="missing field"):
            validate_event({"ev": "window_flush", "step": 10})

    def test_extra_field_rejected(self):
        with pytest.raises(EventSchemaError, match="undocumented"):
            validate_event(
                {"ev": "window_flush", "step": 10, "seeded": 5, "extra": 1}
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(EventSchemaError):
            validate_event({"ev": "window_flush", "step": True, "seeded": 5})

    def test_mistyped_payload_rejected(self):
        with pytest.raises(EventSchemaError):
            validate_event({"ev": "window_flush", "step": 1, "seeded": "five"})


class TestJsonlRoundTrip:
    def test_every_event_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, validate=True) as sink:
            result = run_detector(TRACE, CONFIG, observer=sink)
        reloaded = list(read_events(path, validate=True))
        _, direct = run_with_memory()
        assert reloaded == direct
        assert sink.emitted == len(reloaded)
        assert replay_phases(reloaded) == result.detected_phases

    def test_unbuffered_sink_flushes_each_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, buffered=False)
        sink.emit({"ev": "window_flush", "step": 1, "seeded": 2})
        # Not closed, yet the event must already be on disk.
        assert list(read_events(path)) == [
            {"ev": "window_flush", "step": 1, "seeded": 2}
        ]
        sink.close()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"ev": "window_flush", "step": 1, "seeded": 2})


class TestConcurrentWriters:
    def test_interleaved_threads_write_whole_lines(self, tmp_path):
        # Many session writers sharing one sink (the serving setup):
        # lines may interleave across writers, but every line must be
        # one intact event and nothing may be lost.
        import threading

        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        per_writer = 500

        def writer(writer_id: int) -> None:
            for step in range(per_writer):
                sink.emit({
                    "ev": "window_flush",
                    "step": step,
                    "seeded": writer_id,
                })

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        events = list(read_events(path, validate=True))
        assert len(events) == 8 * per_writer
        assert sink.emitted == 8 * per_writer
        # Per-writer order is preserved even though writers interleave.
        for writer_id in range(8):
            steps = [e["step"] for e in events if e["seeded"] == writer_id]
            assert steps == list(range(per_writer))

    def test_emit_close_race_raises_cleanly(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"ev": "window_flush", "step": 1, "seeded": 2})


class TestTornWrites:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            result = run_detector(TRACE, CONFIG, observer=sink)
        text = path.read_text(encoding="utf-8")
        # Tear the file mid-way through its final line.
        path.write_text(text[: len(text) - 17], encoding="utf-8")
        events = list(read_events(path, validate=True))
        assert len(events) == sink.emitted - 1
        # The trace is still usable: phase_exits before the tear replay.
        assert replay_phases(events) == result.detected_phases

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"ev":"run_begin","step":0,"trace":"t","elements":1,"config":"c"}\n'
            "{torn garbage\n"
            '{"ev":"run_end","step":1,"phases":0,"elements":1}\n',
            encoding="utf-8",
        )
        with pytest.raises(EventTraceError, match="undecodable"):
            list(read_events(path))

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("[1,2,3]\nmore\n", encoding="utf-8")
        with pytest.raises(EventTraceError, match="not a JSON object"):
            list(read_events(path))


class TestReplay:
    def test_replay_matches_both_implementations(self):
        reference_sink = MemorySink()
        engine_sink = MemorySink()
        reference = PhaseDetector(CONFIG, observer=reference_sink).run(TRACE)
        engine = run_detector(TRACE, CONFIG, observer=engine_sink)
        assert replay_phases(reference_sink.events) == reference.detected_phases
        assert replay_phases(engine_sink.events) == engine.detected_phases

    def test_transitions_alternate_and_are_ordered(self):
        _, events = run_with_memory()
        edges = replay_transitions(events)
        assert edges, "expected at least one transition"
        kinds = [kind for _, kind in edges]
        assert kinds[0] == "enter"
        for previous, current in zip(kinds, kinds[1:]):
            assert previous != current, "enter/exit edges must alternate"
        steps = [step for step, _ in edges]
        assert steps == sorted(steps)


class TestSinks:
    def test_null_sink_swallows(self):
        sink = NullSink()
        sink.emit({"ev": "run_end", "step": 0, "phases": 0, "elements": 0})
        sink.close()

    def test_bus_fans_out_and_unsubscribes(self):
        bus = EventBus()
        first, second = MemorySink(), MemorySink()
        bus.subscribe(first)
        bus.subscribe(second)
        event = {"ev": "window_flush", "step": 3, "seeded": 1}
        bus.emit(event)
        bus.unsubscribe(second)
        bus.emit(event)
        assert len(first.events) == 2
        assert len(second.events) == 1

    def test_bus_is_a_valid_observer(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)
        result = run_detector(TRACE, CONFIG, observer=bus)
        assert replay_phases(sink.events) == result.detected_phases

    def test_jsonl_lines_are_compact_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            run_detector(TRACE[:600], CONFIG, observer=sink)
        for line in path.read_text(encoding="utf-8").splitlines():
            event = json.loads(line)
            assert isinstance(event, dict)
            assert line == json.dumps(event, separators=(",", ":"))
