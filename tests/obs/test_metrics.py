"""Metrics registry: instruments, snapshots, and worker-style merging."""

import json
import threading

import pytest

from repro.obs.metrics import (
    GLOBAL_METRICS,
    HISTOGRAM_BUCKETS,
    Histogram,
    MetricsRegistry,
    Timing,
    bucket_bounds,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("jobs").set(2)
        registry.gauge("jobs").set(8)
        assert registry.gauge("jobs").value == 8

    def test_timing_summary(self):
        timing = Timing()
        for value in (0.2, 0.1, 0.4):
            timing.observe(value)
        assert timing.count == 3
        assert timing.minimum == 0.1
        assert timing.maximum == 0.4
        assert abs(timing.mean - (0.7 / 3)) < 1e-12

    def test_time_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        timing = registry.timing("block")
        assert timing.count == 1
        assert timing.total >= 0.0

    def test_get_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("counter", "absent") is None
        assert registry.snapshot()["counters"] == {}


class TestSnapshots:
    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.timing("c").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_empty_timing_snapshot_has_zero_min(self):
        registry = MetricsRegistry()
        registry.timing("t")
        assert registry.snapshot()["timings"]["t"]["min"] == 0.0

    def test_merge_semantics(self):
        first = MetricsRegistry()
        first.counter("records").inc(10)
        first.gauge("jobs").set(2)
        first.timing("chunk").observe(1.0)
        second = MetricsRegistry()
        second.counter("records").inc(5)
        second.gauge("jobs").set(4)
        second.timing("chunk").observe(3.0)
        merged = MetricsRegistry.merged([first.snapshot(), second.snapshot()])
        assert merged.counter("records").value == 15
        assert merged.gauge("jobs").value == 4  # last write wins
        timing = merged.timing("chunk")
        assert timing.count == 2
        assert timing.minimum == 1.0
        assert timing.maximum == 3.0

    def test_merge_is_associative(self):
        snapshots = []
        for increment in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(increment)
            registry.timing("t").observe(float(increment))
            snapshots.append(registry.snapshot())
        left = MetricsRegistry.merged(snapshots)
        right = MetricsRegistry.merged([snapshots[0]])
        right.merge(MetricsRegistry.merged(snapshots[1:]).snapshot())
        assert left.snapshot() == right.snapshot()

    def test_merging_empty_timing_is_a_noop(self):
        registry = MetricsRegistry()
        registry.timing("t").observe(2.0)
        registry.merge({"timings": {"t": {"count": 0, "total": 0.0,
                                          "min": 0.0, "max": 0.0}}})
        assert registry.timing("t").count == 1
        assert registry.timing("t").minimum == 2.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.1)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "timings": {}, "histograms": {}}


def test_global_registry_exists_and_is_a_registry():
    assert isinstance(GLOBAL_METRICS, MetricsRegistry)
    snapshot = GLOBAL_METRICS.snapshot()
    assert set(snapshot) == {"counters", "gauges", "timings", "histograms"}


class TestHistogram:
    def test_bucket_layout_is_covering_and_ordered(self):
        previous_hi = 0.0
        for index in range(HISTOGRAM_BUCKETS):
            lo, hi = bucket_bounds(index)
            assert lo == previous_hi
            assert hi > lo
            previous_hi = hi
        assert bucket_bounds(HISTOGRAM_BUCKETS - 1)[1] == float("inf")

    def test_observe_counts_and_summary(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.004, 0.1):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.1
        assert abs(histogram.total - 0.107) < 1e-12
        assert sum(histogram.counts) == 4

    def test_quantiles_are_bracketed_by_min_and_max(self):
        histogram = Histogram()
        values = [0.0005 * (i + 1) for i in range(100)]
        for value in values:
            histogram.observe(value)
        p = histogram.percentiles()
        assert min(values) <= p["p50"] <= p["p95"] <= p["p99"] <= max(values)
        # p50 of a uniform spread lands near the middle, not an endpoint.
        assert 0.015 <= p["p50"] <= 0.035

    def test_quantile_identical_values_is_exact(self):
        histogram = Histogram()
        for _ in range(50):
            histogram.observe(0.002)
        assert histogram.quantile(0.5) == 0.002
        assert histogram.quantile(0.99) == 0.002

    def test_underflow_and_overflow_buckets(self):
        histogram = Histogram()
        histogram.observe(1e-9)   # below HISTOGRAM_MIN
        histogram.observe(1e6)    # above the top decade
        assert histogram.counts[0] == 1
        assert histogram.counts[HISTOGRAM_BUCKETS - 1] == 1
        # Quantiles stay finite and clamped to observations.
        assert histogram.quantile(1.0) == 1e6

    def test_snapshot_roundtrip(self):
        histogram = Histogram()
        for value in (0.0001, 0.003, 0.2, 5.0):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()
        assert clone.percentiles() == histogram.percentiles()

    def test_merge_equals_union_of_observations(self):
        values_a = [0.001, 0.002, 0.5]
        values_b = [0.0004, 0.09, 2.0]
        a, b, union = Histogram(), Histogram(), Histogram()
        for value in values_a:
            a.observe(value)
            union.observe(value)
        for value in values_b:
            b.observe(value)
            union.observe(value)
        a.merge_dict(b.to_dict())
        assert a.to_dict() == union.to_dict()

    def test_registry_time_histogram_and_merge(self):
        registry = MetricsRegistry()
        with registry.time_histogram("block"):
            pass
        other = MetricsRegistry()
        other.histogram("block").observe(0.5)
        registry.merge(other.snapshot())
        assert registry.histogram("block").count == 2
        assert "block" in registry.snapshot()["histograms"]

    def test_merge_rejects_out_of_range_bucket(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.merge_dict(
                {"count": 1, "total": 0.1, "min": 0.1, "max": 0.1,
                 "buckets": {str(HISTOGRAM_BUCKETS): 1}}
            )

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestThreadSafety:
    def test_concurrent_updates_do_not_lose_counts(self):
        registry = MetricsRegistry()
        workers = 8
        per_worker = 2_000

        def hammer():
            for _ in range(per_worker):
                registry.counter("n").inc()
                registry.histogram("h").observe(0.001)
                registry.timing("t").observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == workers * per_worker
        assert registry.histogram("h").count == workers * per_worker
        assert registry.timing("t").count == workers * per_worker
