"""Metrics registry: instruments, snapshots, and worker-style merging."""

import json

from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry, Timing


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("jobs").set(2)
        registry.gauge("jobs").set(8)
        assert registry.gauge("jobs").value == 8

    def test_timing_summary(self):
        timing = Timing()
        for value in (0.2, 0.1, 0.4):
            timing.observe(value)
        assert timing.count == 3
        assert timing.minimum == 0.1
        assert timing.maximum == 0.4
        assert abs(timing.mean - (0.7 / 3)) < 1e-12

    def test_time_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        timing = registry.timing("block")
        assert timing.count == 1
        assert timing.total >= 0.0

    def test_get_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get("counter", "absent") is None
        assert registry.snapshot()["counters"] == {}


class TestSnapshots:
    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.timing("c").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_empty_timing_snapshot_has_zero_min(self):
        registry = MetricsRegistry()
        registry.timing("t")
        assert registry.snapshot()["timings"]["t"]["min"] == 0.0

    def test_merge_semantics(self):
        first = MetricsRegistry()
        first.counter("records").inc(10)
        first.gauge("jobs").set(2)
        first.timing("chunk").observe(1.0)
        second = MetricsRegistry()
        second.counter("records").inc(5)
        second.gauge("jobs").set(4)
        second.timing("chunk").observe(3.0)
        merged = MetricsRegistry.merged([first.snapshot(), second.snapshot()])
        assert merged.counter("records").value == 15
        assert merged.gauge("jobs").value == 4  # last write wins
        timing = merged.timing("chunk")
        assert timing.count == 2
        assert timing.minimum == 1.0
        assert timing.maximum == 3.0

    def test_merge_is_associative(self):
        snapshots = []
        for increment in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(increment)
            registry.timing("t").observe(float(increment))
            snapshots.append(registry.snapshot())
        left = MetricsRegistry.merged(snapshots)
        right = MetricsRegistry.merged([snapshots[0]])
        right.merge(MetricsRegistry.merged(snapshots[1:]).snapshot())
        assert left.snapshot() == right.snapshot()

    def test_merging_empty_timing_is_a_noop(self):
        registry = MetricsRegistry()
        registry.timing("t").observe(2.0)
        registry.merge({"timings": {"t": {"count": 0, "total": 0.0,
                                          "min": 0.0, "max": 0.0}}})
        assert registry.timing("t").count == 1
        assert registry.timing("t").minimum == 2.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "timings": {}}


def test_global_registry_exists_and_is_a_registry():
    assert isinstance(GLOBAL_METRICS, MetricsRegistry)
    snapshot = GLOBAL_METRICS.snapshot()
    assert set(snapshot) == {"counters", "gauges", "timings"}
