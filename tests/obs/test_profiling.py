"""Chunk profiler: wall/memory sampling and tracemalloc stewardship."""

import tracemalloc

import pytest

from repro.obs.profiling import ChunkProfiler


def test_profile_captures_wall_and_peak():
    with ChunkProfiler("alloc") as profiler:
        buffers = [bytearray(64 * 1024) for _ in range(8)]
    profile = profiler.profile
    assert profile.label == "alloc"
    assert profile.wall_seconds >= 0.0
    assert profile.peak_bytes >= 8 * 64 * 1024
    assert len(buffers) == 8
    d = profile.to_dict()
    assert d["label"] == "alloc"
    assert d["peak_bytes"] == profile.peak_bytes


def test_profile_unavailable_before_exit():
    profiler = ChunkProfiler("pending")
    assert profiler.profile is None


def test_owns_tracemalloc_when_not_tracing():
    if tracemalloc.is_tracing():
        pytest.skip("tracemalloc already active in this interpreter")
    with ChunkProfiler("own"):
        assert tracemalloc.is_tracing()
    assert not tracemalloc.is_tracing()


def test_leaves_existing_tracing_running():
    tracemalloc.start()
    try:
        with ChunkProfiler("guest"):
            pass
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()
