"""Span tracing: explicit context, persistence, and the Chrome export."""

import json

import pytest

from repro.obs.trace import (
    SPAN_TRACE_VERSION,
    SpanTraceError,
    Tracer,
    chrome_trace,
    read_spans,
)


class TestTracer:
    def test_spans_nest_by_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", parent=root) as child:
                with tracer.span("grandchild", parent=child):
                    pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["root"].parent_id is None
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id

    def test_spans_record_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", parent=outer):
                pass
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_span_times_are_ordered(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        assert span.end is not None
        assert span.end >= span.start >= 0.0
        assert span.duration >= 0.0

    def test_attrs_are_kept(self):
        tracer = Tracer()
        with tracer.span("job", benchmark="javac", specs=4):
            pass
        record = tracer.spans[0].to_dict()
        assert record["attrs"] == {"benchmark": "javac", "specs": 4}

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert tracer.header()["dropped"] == 3

    def test_exception_inside_span_still_records_it(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].end is not None

    def test_trace_ids_are_unique(self):
        assert Tracer().trace_id != Tracer().trace_id


class TestPersistence:
    def test_save_and_read_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", profile="quick") as root:
            with tracer.span("leaf", parent=root):
                pass
        path = tracer.save(tmp_path / "run.spans.jsonl")
        header, spans = read_spans(path)
        assert header["span_trace"] == SPAN_TRACE_VERSION
        assert header["trace_id"] == tracer.trace_id
        assert [span["name"] for span in spans] == ["leaf", "root"]
        assert spans == [span.to_dict() for span in tracer.spans]

    def test_torn_final_line_is_dropped(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tracer.save(tmp_path / "run.spans.jsonl")
        path.write_text(
            path.read_text(encoding="utf-8") + '{"name": "tor',
            encoding="utf-8",
        )
        _, spans = read_spans(path)
        assert [span["name"] for span in spans] == ["only"]

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n', encoding="utf-8")
        with pytest.raises(SpanTraceError):
            read_spans(path)

    def test_newer_version_raises(self, tmp_path):
        path = tmp_path / "new.jsonl"
        path.write_text(
            json.dumps({"span_trace": SPAN_TRACE_VERSION + 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(SpanTraceError):
            read_spans(path)

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SpanTraceError):
            read_spans(path)


class TestChromeExport:
    def test_event_schema(self):
        tracer = Tracer()
        with tracer.span("root", kind="demo") as root:
            with tracer.span("leaf", parent=root):
                pass
        document = chrome_trace([span.to_dict() for span in tracer.spans])
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert "span" in event["args"] and "parent" in event["args"]
        # Sorted by start time; the root starts first and carries attrs.
        assert events[0]["name"] == "root"
        assert events[0]["args"]["kind"] == "demo"

    def test_export_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        document = chrome_trace([span.to_dict() for span in tracer.spans])
        assert json.loads(json.dumps(document)) == document

    def test_zero_cost_when_off_pattern(self):
        """The duck-typed instrumentation contract: tracer=None must
        short-circuit before any tracer attribute access."""
        from repro.core.bank import _maybe_span

        with _maybe_span(None, "anything", None) as span:
            assert span is None
