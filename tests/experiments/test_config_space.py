"""Profile and grid tests."""

import pytest

from repro.core.config import AnalyzerKind, ModelKind, TrailingPolicy
from repro.experiments.config_space import (
    CW_NOMINALS,
    DEFAULT,
    MPL_NOMINALS,
    MPL_NOMINALS_EXTENDED,
    PAPER,
    PROFILES,
    QUICK,
    ConfigSpec,
    SuiteProfile,
    grid_size,
    paper_grid,
)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"quick", "default", "paper"}

    def test_default_scaling(self):
        assert DEFAULT.actual(1_000) == 50
        assert DEFAULT.actual(100_000) == 5_000
        assert DEFAULT.actual(200_000) == 10_000

    def test_paper_scaling_is_nominal(self):
        assert PAPER.actual(1_000) == 1_000
        assert PAPER.actual(100_000) == 100_000

    def test_actual_floors_at_two(self):
        tiny = SuiteProfile(name="t", workload_scale=0.0001)
        assert tiny.actual(1_000) == 2

    def test_actual_mpls_default_grid(self):
        assert DEFAULT.actual_mpls() == [50, 250, 500, 1_250, 2_500, 5_000]

    def test_extended_includes_200k(self):
        assert MPL_NOMINALS_EXTENDED[-1] == 200_000
        assert MPL_NOMINALS == MPL_NOMINALS_EXTENDED[:-1]


class TestConfigSpec:
    def test_fixed_family_materialization(self):
        spec = ConfigSpec("fixed", 1_000, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6)
        config = spec.to_config(DEFAULT)
        assert config.is_fixed_interval
        assert config.cw_size == 50
        assert config.threshold == 0.6

    def test_constant_family(self):
        spec = ConfigSpec("constant", 5_000, ModelKind.WEIGHTED, AnalyzerKind.AVERAGE, 0.1)
        config = spec.to_config(DEFAULT)
        assert config.trailing is TrailingPolicy.CONSTANT
        assert config.skip_factor == 1
        assert config.delta == 0.1

    def test_adaptive_family(self):
        spec = ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.5)
        config = spec.to_config(DEFAULT)
        assert config.trailing is TrailingPolicy.ADAPTIVE

    def test_analyzer_label(self):
        thr = ConfigSpec("fixed", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6)
        avg = ConfigSpec("fixed", 500, ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, 0.05)
        assert thr.analyzer_label() == "thr=0.6"
        assert avg.analyzer_label() == "avg=0.05"


class TestGrid:
    def test_grid_size_formula(self):
        analyzers = len(DEFAULT.thresholds) + len(DEFAULT.deltas)
        cw = len(DEFAULT.cw_nominals)
        expected = 3 * cw * 2 * analyzers + 3 * cw * analyzers
        assert grid_size(DEFAULT) == expected

    def test_grid_covers_families(self):
        grid = paper_grid(QUICK)
        families = {spec.family for spec in grid}
        assert families == {"fixed", "constant", "adaptive"}

    def test_grid_has_anchor_ablation(self):
        grid = paper_grid(QUICK)
        variants = {
            (spec.anchor.value, spec.resize.value)
            for spec in grid
            if spec.family == "adaptive"
        }
        assert variants == {("rn", "slide"), ("lnn", "slide"), ("rn", "move"), ("lnn", "move")}

    def test_ablation_variants_unweighted_only(self):
        grid = paper_grid(QUICK)
        for spec in grid:
            if spec.family == "adaptive" and (
                spec.anchor.value != "rn" or spec.resize.value != "slide"
            ):
                assert spec.model is ModelKind.UNWEIGHTED

    def test_no_duplicate_specs(self):
        grid = paper_grid(DEFAULT)
        assert len(grid) == len(set(grid))
