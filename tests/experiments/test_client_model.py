"""Client cost model and MPL-selection tests."""

import numpy as np
import pytest

from repro.experiments.client_model import ClientModel, MplOutcome, best_mpl, sweep_mpl
from repro.scoring.states import states_from_phases
from repro.workloads import load_traces


class TestClientModel:
    def test_break_even(self):
        client = ClientModel(action_cost=100, speedup=0.1)
        assert client.break_even_length == pytest.approx(1_000.0)

    def test_suggested_mpl_scales_break_even(self):
        client = ClientModel(action_cost=100, speedup=0.1)
        assert client.suggested_mpl(safety_factor=2.0) == 2_000
        with pytest.raises(ValueError):
            client.suggested_mpl(safety_factor=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientModel(action_cost=-1, speedup=0.1)
        with pytest.raises(ValueError):
            ClientModel(action_cost=1, speedup=0.0)
        with pytest.raises(ValueError):
            ClientModel(action_cost=1, speedup=0.1, mis_penalty=-0.1)

    def test_benefit_accounting(self):
        client = ClientModel(action_cost=10, speedup=0.5, mis_penalty=0.25)
        oracle = states_from_phases([(0, 100)], 200)
        detected = states_from_phases([(50, 150)], 200)
        # 50 correct, 50 wrong, 1 action.
        value = client.benefit(detected, 1, oracle)
        assert value == pytest.approx(0.5 * 50 - 0.25 * 50 - 10)

    def test_perfect_detection_benefit(self):
        client = ClientModel(action_cost=0, speedup=1.0)
        oracle = states_from_phases([(10, 60)], 100)
        assert client.benefit(oracle, 1, oracle) == pytest.approx(50.0)


class TestSweepMpl:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("cm")
        return load_traces("jlex", scale=0.25, cache_dir=cache)

    def test_outcomes_per_mpl(self, traces):
        branch, call_loop = traces
        client = ClientModel(action_cost=30, speedup=0.15, mis_penalty=0.05)
        outcomes = sweep_mpl(branch, call_loop, client, mpls=(25, 100, 400))
        assert [o.mpl for o in outcomes] == [25, 100, 400]
        for outcome in outcomes:
            assert outcome.detected_phases >= 0
            assert -1_000_000 < outcome.benefit < client.speedup * len(branch)

    def test_best_mpl(self, traces):
        branch, call_loop = traces
        client = ClientModel(action_cost=30, speedup=0.15)
        outcomes = sweep_mpl(branch, call_loop, client, mpls=(25, 100, 400))
        chosen = best_mpl(outcomes)
        assert chosen.benefit == max(o.benefit for o in outcomes)

    def test_best_mpl_empty(self):
        with pytest.raises(ValueError):
            best_mpl([])

    def test_expensive_actions_push_mpl_up(self, traces):
        """A costlier action makes small-MPL (many-phase) regimes lose."""
        branch, call_loop = traces
        cheap = ClientModel(action_cost=5, speedup=0.15)
        costly = ClientModel(action_cost=400, speedup=0.15)
        mpls = (25, 150, 600)
        cheap_best = best_mpl(sweep_mpl(branch, call_loop, cheap, mpls))
        costly_best = best_mpl(sweep_mpl(branch, call_loop, costly, mpls))
        assert costly_best.mpl >= cheap_best.mpl
