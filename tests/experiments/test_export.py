"""CSV export round-trip tests."""

import pytest

from repro.experiments.export import records_from_csv, records_to_csv
from repro.experiments.runner import SweepRecord


def record(**overrides):
    base = dict(
        benchmark="db",
        family="adaptive",
        cw_nominal=500,
        model="unweighted",
        analyzer="thr=0.6",
        anchor="rn",
        resize="slide",
        mpl_nominal=10_000,
        score=0.8125,
        correlation=0.9,
        sensitivity=0.75,
        false_positives=0.125,
        corrected_score=0.85,
        num_detected_phases=4,
        num_baseline_phases=4,
    )
    base.update(overrides)
    return SweepRecord(**base)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [record(), record(benchmark="jess", score=0.5)]
        path = tmp_path / "records.csv"
        records_to_csv(records, path)
        loaded = records_from_csv(path)
        assert loaded == records

    def test_types_preserved(self, tmp_path):
        path = tmp_path / "records.csv"
        records_to_csv([record()], path)
        (loaded,) = records_from_csv(path)
        assert isinstance(loaded.cw_nominal, int)
        assert isinstance(loaded.score, float)
        assert isinstance(loaded.benchmark, str)

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        records_to_csv([], path)
        assert records_from_csv(path) == []

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            records_from_csv(path)

    def test_real_sweep_records(self, tmp_path):
        from repro.core.config import AnalyzerKind, ModelKind
        from repro.experiments.config_space import ConfigSpec, SuiteProfile
        from repro.experiments.runner import BaselineSet, evaluate_spec
        from repro.workloads import load_traces

        profile = SuiteProfile(name="csv", workload_scale=0.08)
        branch, call_loop = load_traces("db", scale=0.08, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, profile, (1_000,), name="db")
        spec = ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6)
        records = evaluate_spec(branch, baselines, spec, profile)
        path = tmp_path / "sweep.csv"
        records_to_csv(records, path)
        assert records_from_csv(path) == records
