"""Overhead-analysis tests."""

import pytest

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.experiments.overhead import measure_overhead, overhead_comparison
from repro.profiles.synthetic import SyntheticTraceBuilder


def trace_with_phases():
    builder = SyntheticTraceBuilder(seed=31)
    builder.add_transition(300)
    builder.add_phase(2_000, body_size=8)
    builder.add_transition(300)
    builder.add_phase(2_000, body_size=8)
    builder.add_transition(300)
    return builder.build()[0]


TRACE = trace_with_phases()


class TestMeasureOverhead:
    def test_skip_one_evaluates_once_per_element_after_fill(self):
        config = DetectorConfig(cw_size=100, threshold=0.6)
        report = measure_overhead(TRACE, config)
        assert report.window_updates == len(TRACE)
        # Similarity is computed once per step while windows are full;
        # refills after each phase end suppress some evaluations.
        assert 0.5 < report.evaluations_per_element <= 1.0

    def test_fixed_interval_evaluates_once_per_window(self):
        config = DetectorConfig.fixed_interval(100)
        report = measure_overhead(TRACE, config)
        skip_one = measure_overhead(TRACE, DetectorConfig(cw_size=100, threshold=0.5))
        # skip = CW does ~1/CW as many similarity evaluations.
        assert report.similarity_evaluations <= len(TRACE) // 100 + 1
        assert report.similarity_evaluations * 50 < skip_one.similarity_evaluations

    def test_adaptive_tw_grows_with_phase(self):
        adaptive = measure_overhead(
            TRACE,
            DetectorConfig(cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6),
        )
        constant = measure_overhead(TRACE, DetectorConfig(cw_size=100, threshold=0.6))
        # The Adaptive TW holds (most of) the phase; the Constant TW is bounded.
        assert constant.peak_tw_length == 100
        assert adaptive.peak_tw_length > 500

    def test_unweighted_tracks_bounded_set(self):
        report = measure_overhead(
            TRACE,
            DetectorConfig(cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6),
        )
        # Distinct tracked elements stay far below the TW length for a
        # repetitive phase (the paper's manageable-size argument).
        assert report.peak_tracked_elements < report.peak_tw_length

    def test_anchor_and_flush_counts(self):
        config = DetectorConfig(cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6)
        report = measure_overhead(TRACE, config)
        # Two phases: two anchorings, two flushes.
        assert report.anchor_operations == 2
        assert report.window_flushes == 2

    def test_comparison_runs_all(self):
        configs = [
            DetectorConfig(cw_size=50, threshold=0.6),
            DetectorConfig.fixed_interval(50),
        ]
        reports = overhead_comparison(TRACE, configs)
        assert len(reports) == 2
        assert reports[0].trace_length == reports[1].trace_length == len(TRACE)
        assert all(r.wall_seconds > 0 for r in reports)
        assert all(r.elements_per_second > 0 for r in reports)
