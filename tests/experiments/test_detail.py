"""Per-benchmark detail table tests."""

import pytest

from repro.experiments.detail import per_benchmark_best, per_benchmark_winner
from repro.experiments.runner import SweepRecord


def record(benchmark, family="constant", model="unweighted", cw=500, mpl=1_000,
           score=0.5, anchor="rn", resize="slide"):
    return SweepRecord(
        benchmark=benchmark,
        family=family,
        cw_nominal=cw,
        model=model,
        analyzer="thr=0.5",
        anchor=anchor,
        resize=resize,
        mpl_nominal=mpl,
        score=score,
        correlation=score,
        sensitivity=score,
        false_positives=0.0,
        corrected_score=score,
        num_detected_phases=3,
        num_baseline_phases=5,
    )


RECORDS = [
    record("a", family="constant", score=0.7),
    record("a", family="constant", score=0.6),
    record("a", family="adaptive", score=0.8),
    record("a", family="adaptive", score=0.75, anchor="lnn"),  # not default
    record("b", family="constant", score=0.4),
    record("b", family="adaptive", score=0.3),
    record("a", family="constant", model="weighted", score=0.65),
]


class TestPerBenchmarkBest:
    def test_best_per_cell(self):
        table = per_benchmark_best(RECORDS, ["a", "b"], "constant", mpl_nominals=[1_000])
        assert table.rows["a"] == [0.7]
        assert table.rows["b"] == [0.4]

    def test_missing_cell_is_none(self):
        table = per_benchmark_best(RECORDS, ["a"], "constant", mpl_nominals=[1_000, 5_000])
        assert table.rows["a"][1] is None
        assert "-" in table.render()

    def test_adaptive_pins_default_variant(self):
        table = per_benchmark_best(RECORDS, ["a"], "adaptive", mpl_nominals=[1_000])
        assert table.rows["a"] == [0.8]  # the lnn record is excluded

    def test_cw_filter(self):
        big_cw = [record("a", cw=5_000, mpl=1_000, score=0.99)]
        table = per_benchmark_best(RECORDS + big_cw, ["a"], "constant", mpl_nominals=[1_000])
        assert table.rows["a"] == [0.7]  # cw 5000 > mpl/2 excluded


class TestPerBenchmarkWinner:
    def test_family_winner(self):
        table = per_benchmark_winner(
            RECORDS, ["a", "b"], "family", "constant", "adaptive", mpl_nominals=[1_000]
        )
        assert table.rows["a"] == ["adaptive"]
        assert table.rows["b"] == ["constant"]
        assert table.win_counts() == (1, 1)

    def test_model_winner(self):
        table = per_benchmark_winner(
            RECORDS, ["a"], "model", "unweighted", "weighted", mpl_nominals=[1_000]
        )
        assert table.rows["a"] == ["unweighted"]  # 0.8 vs 0.65

    def test_tie_margin(self):
        records = [
            record("a", family="constant", score=0.700),
            record("a", family="adaptive", score=0.702),
        ]
        table = per_benchmark_winner(
            records, ["a"], "family", "constant", "adaptive", mpl_nominals=[1_000]
        )
        assert table.rows["a"] == ["tie"]

    def test_missing_cells_dash(self):
        table = per_benchmark_winner(
            RECORDS, ["a"], "family", "constant", "adaptive", mpl_nominals=[25_000]
        )
        assert table.rows["a"] == ["-"]

    def test_unknown_dimension(self):
        with pytest.raises(ValueError):
            per_benchmark_winner(RECORDS, ["a"], "analyzer", "x", "y")
