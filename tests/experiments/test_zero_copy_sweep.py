"""Zero-copy evaluation pipeline equivalence at the sweep level.

The acceptance bar for the mmap/sidecar/batched-scoring stack: sweep
records and the JSONL cache bytes must be identical with the pipeline
on (the default) and fully off.
"""

import numpy as np
import pytest

from repro.core.config import AnalyzerKind, ModelKind
from repro.experiments import runner as runner_mod
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, evaluate_bank
from repro.experiments.sweep import Sweep
from repro.workloads import load_traces

TINY = SuiteProfile(
    name="tiny",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

SPECS = [
    ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("constant", 5_000, ModelKind.WEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 5_000, ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, 0.05),
]

MPLS = (1_000, 10_000)
BENCHMARKS = ["db", "jlex"]
CACHE_NAME = "sweep-tiny.jsonl"


def _run_sweep(cache_dir, mmap, jobs=1):
    sweep = Sweep(
        TINY, cache_dir=cache_dir, benchmarks=BENCHMARKS,
        mpl_nominals=MPLS, mmap=mmap,
    )
    records = sweep.ensure(SPECS, jobs=jobs)
    return records, (cache_dir / CACHE_NAME).read_bytes()


class TestMmapSweepEquivalence:
    def test_mmap_on_off_byte_identical(self, tmp_path):
        on_records, on_cache = _run_sweep(tmp_path / "on", mmap=True)
        off_records, off_cache = _run_sweep(tmp_path / "off", mmap=False)
        assert on_records == off_records
        assert on_cache == off_cache

    def test_parallel_mmap_matches_serial_heap(self, tmp_path):
        serial_records, serial_cache = _run_sweep(tmp_path / "s", mmap=False, jobs=1)
        parallel_records, parallel_cache = _run_sweep(tmp_path / "p", mmap=True, jobs=2)
        assert parallel_records == serial_records
        assert parallel_cache == serial_cache

    def test_suite_traces_mmap_backed(self, tmp_path):
        # Warm the cache, then reload: the sweep's traces must be
        # memmap views, not heap copies.
        _run_sweep(tmp_path, mmap=True)
        sweep = Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS, mmap=True)
        for branch_trace, _ in sweep.traces.values():
            array = branch_trace.array
            assert isinstance(array, np.memmap) or isinstance(array.base, np.memmap)

    def test_batch_scoring_matches_scalar(self, tmp_path):
        branch, call_loop = load_traces(
            "db", scale=TINY.workload_scale, cache_dir=tmp_path
        )
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        batched = evaluate_bank(branch, baselines, SPECS, TINY, batch=True)
        scalar = evaluate_bank(branch, baselines, SPECS, TINY, batch=False)
        assert batched == scalar


class TestCacheCompat:
    def test_v1_cache_without_sidecars_regenerates(self, tmp_path):
        # A pre-sidecar (v1) trace cache has .btrace/.cloop but no
        # .bcodes: the sweep must regenerate sidecars transparently and
        # produce byte-identical sweep JSONL.
        _, reference_cache = _run_sweep(tmp_path, mmap=True)
        for sidecar in tmp_path.glob("*.bcodes"):
            sidecar.unlink()
        (tmp_path / CACHE_NAME).unlink()
        (tmp_path / "sweep-tiny.manifest.json").unlink()
        _, regenerated_cache = _run_sweep(tmp_path, mmap=True)
        assert regenerated_cache == reference_cache
        assert sorted(tmp_path.glob("*.bcodes")), "sidecars must be rebuilt"

    def test_stale_sidecar_never_poisons_records(self, tmp_path):
        _, reference_cache = _run_sweep(tmp_path, mmap=True)
        # Swap the two benchmarks' sidecars: both are now stale (hash
        # mismatch) and must be rebuilt, not adopted.
        sidecars = sorted(tmp_path.glob("*.bcodes"))
        assert len(sidecars) == 2
        a_bytes, b_bytes = sidecars[0].read_bytes(), sidecars[1].read_bytes()
        sidecars[0].write_bytes(b_bytes)
        sidecars[1].write_bytes(a_bytes)
        (tmp_path / CACHE_NAME).unlink()
        _, regenerated_cache = _run_sweep(tmp_path, mmap=True)
        assert regenerated_cache == reference_cache


class TestLazyBaselines:
    def _counting(self, monkeypatch):
        calls = []
        original = runner_mod.solve_baseline

        def counting(call_loop, mpl, name=""):
            calls.append(mpl)
            return original(call_loop, mpl, name=name)

        monkeypatch.setattr(runner_mod, "solve_baseline", counting)
        return calls

    def test_construction_solves_nothing(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        _, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        BaselineSet(call_loop, TINY, MPLS, name="db")
        assert calls == []

    def test_each_nominal_solved_once_on_demand(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        _, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        baselines.states(MPLS[0])
        assert len(calls) == 1
        # states/phases/solution all share one memoized solve per MPL.
        baselines.states(MPLS[0])
        baselines.phases(MPLS[0])
        baselines.solution(MPLS[0])
        assert len(calls) == 1
        baselines.states(MPLS[1])
        assert len(calls) == 2
        assert calls == [TINY.actual(nominal) for nominal in MPLS]

    def test_solutions_mapping_view(self, tmp_path, monkeypatch):
        calls = self._counting(monkeypatch)
        _, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        assert list(baselines.solutions) == list(MPLS)
        assert len(baselines.solutions) == len(MPLS)
        assert calls == []  # iteration/len must not solve
        solution = baselines.solutions[MPLS[0]]
        assert solution is baselines.solution(MPLS[0])
        assert len(calls) == 1

    def test_unknown_nominal_rejected(self, tmp_path):
        _, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        with pytest.raises(KeyError):
            baselines.solution(123)
        with pytest.raises(KeyError):
            baselines.solutions[123]
