"""Robustness-study tests."""

import pytest

from repro.experiments.robustness import degradation, noise_robustness
from repro.workloads import load_traces


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    cache = tmp_path_factory.mktemp("robust")
    return load_traces("compress", scale=0.2, cache_dir=cache)


class TestNoiseRobustness:
    def test_points_per_rate_and_detector(self, traces):
        branch, call_loop = traces
        points = noise_robustness(branch, call_loop, mpl=100, noise_rates=(0.0, 0.1))
        assert len(points) == 2 * 5
        labels = {p.detector for p in points}
        assert "fixed-interval" in labels
        assert "constant-weighted" in labels and "adaptive-unweighted" in labels

    def test_scores_bounded(self, traces):
        branch, call_loop = traces
        points = noise_robustness(branch, call_loop, mpl=100, noise_rates=(0.0, 0.05))
        for point in points:
            assert 0.0 <= point.score <= 1.0

    def test_noise_degrades_or_holds(self, traces):
        """Clean trace should score at least as well as heavy noise for
        the skip-1 detectors (mild noise may coincidentally help)."""
        branch, call_loop = traces
        points = noise_robustness(
            branch, call_loop, mpl=100, noise_rates=(0.0, 0.3)
        )
        for detector in ("constant-unweighted", "adaptive-unweighted"):
            assert degradation(points, detector) >= -0.05, detector

    def test_weighted_model_holds_under_moderate_noise(self, traces):
        """At a 5% corruption rate the weighted model barely moves: it
        only loses the noise's mass, not whole distinct-set fractions."""
        branch, call_loop = traces
        points = noise_robustness(
            branch, call_loop, mpl=100, noise_rates=(0.0, 0.05)
        )
        for detector in ("constant-weighted", "adaptive-weighted"):
            assert degradation(points, detector) <= 0.15, detector

    def test_degradation_requires_two_rates(self, traces):
        branch, call_loop = traces
        points = noise_robustness(branch, call_loop, mpl=100, noise_rates=(0.0,))
        with pytest.raises(ValueError):
            degradation(points, "constant-weighted")
