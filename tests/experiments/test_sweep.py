"""Sweep harness tests: evaluation, caching, invalidation."""

import json

import pytest

from repro.core.config import AnalyzerKind, ModelKind
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, evaluate_spec
from repro.experiments.sweep import Sweep
from repro.workloads import load_traces

TINY = SuiteProfile(
    name="tiny",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

SPECS = [
    ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
]

MPLS = (1_000, 10_000)


@pytest.fixture
def sweep(tmp_path):
    return Sweep(TINY, cache_dir=tmp_path, benchmarks=["db"], mpl_nominals=MPLS)


class TestEvaluateSpec:
    def test_records_per_mpl(self, tmp_path):
        branch, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        records = evaluate_spec(branch, baselines, SPECS[0], TINY)
        assert len(records) == len(MPLS)
        for record in records:
            assert record.benchmark == "db"
            assert 0.0 <= record.score <= 1.0
            assert 0.0 <= record.correlation <= 1.0
            assert 0.0 <= record.corrected_score <= 1.0

    def test_record_round_trip(self, tmp_path):
        branch, call_loop = load_traces("db", scale=TINY.workload_scale, cache_dir=tmp_path)
        baselines = BaselineSet(call_loop, TINY, MPLS, name="db")
        record = evaluate_spec(branch, baselines, SPECS[0], TINY)[0]
        from repro.experiments.runner import SweepRecord

        assert SweepRecord.from_row(record.to_row()) == record


class TestSweepCache:
    def test_ensure_computes_and_returns(self, sweep):
        records = sweep.ensure(SPECS)
        assert len(records) == len(SPECS) * len(MPLS)

    def test_cache_file_written(self, sweep, tmp_path):
        sweep.ensure(SPECS)
        cache = tmp_path / "sweep-tiny.jsonl"
        assert cache.exists()
        lines = [json.loads(l) for l in cache.read_text().splitlines() if l.strip()]
        assert len(lines) == len(SPECS) * len(MPLS)
        assert all("fingerprint" in row for row in lines)

    def test_warm_cache_skips_evaluation(self, sweep, tmp_path):
        sweep.ensure(SPECS)
        # A fresh Sweep over the same cache dir must not recompute:
        # corrupt nothing, just verify the records load.
        fresh = Sweep(TINY, cache_dir=tmp_path, benchmarks=["db"], mpl_nominals=MPLS)
        assert len(fresh.records()) == len(SPECS) * len(MPLS)
        records = fresh.ensure(SPECS)
        assert len(records) == len(SPECS) * len(MPLS)

    def test_stale_fingerprint_discarded(self, sweep, tmp_path):
        sweep.ensure(SPECS)
        cache = tmp_path / "sweep-tiny.jsonl"
        rows = [json.loads(l) for l in cache.read_text().splitlines()]
        for row in rows:
            row["fingerprint"] = "stale"
        cache.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        fresh = Sweep(TINY, cache_dir=tmp_path, benchmarks=["db"], mpl_nominals=MPLS)
        assert fresh.records() == []

    def test_torn_tail_tolerated(self, sweep, tmp_path):
        sweep.ensure(SPECS)
        cache = tmp_path / "sweep-tiny.jsonl"
        with cache.open("a") as handle:
            handle.write('{"benchmark": "db", "truncat')
        fresh = Sweep(TINY, cache_dir=tmp_path, benchmarks=["db"], mpl_nominals=MPLS)
        assert len(fresh.records()) == len(SPECS) * len(MPLS)

    def test_baselines_lazy_and_cached(self, sweep):
        first = sweep.baselines("db")
        second = sweep.baselines("db")
        assert first is second
        assert set(first.mpl_nominals) == set(MPLS)


class TestRunManifest:
    def test_ensure_writes_manifest(self, sweep, tmp_path):
        from repro.obs.manifest import load_manifest

        sweep.ensure(SPECS)
        manifest = load_manifest(tmp_path / "sweep-tiny.manifest.json")
        assert manifest["profile"] == "tiny"
        assert manifest["benchmarks"] == ["db"]
        assert manifest["jobs"] == 1
        assert manifest["records"]["evaluated"] == len(SPECS) * len(MPLS)
        assert manifest["records"]["total"] == len(SPECS) * len(MPLS)
        assert manifest["fingerprints"].keys() == {"db"}
        assert manifest["environment"]["python"]
        counters = manifest["metrics"]["counters"]
        assert counters["sweep.records_evaluated"] == len(SPECS) * len(MPLS)

    def test_manifest_can_be_suppressed(self, sweep, tmp_path):
        sweep.ensure(SPECS, manifest=False)
        assert not (tmp_path / "sweep-tiny.manifest.json").exists()

    def test_parallel_manifest_worker_invariant(self, tmp_path):
        from repro.obs.manifest import load_manifest, summarize_manifest

        sweep = Sweep(TINY, cache_dir=tmp_path, benchmarks=["db", "jlex"],
                      mpl_nominals=MPLS)
        sweep.ensure(SPECS, jobs=2)
        manifest = load_manifest(sweep.manifest_path)
        workers = manifest["workers"]
        assert workers, "parallel run must record per-worker accounting"
        assert sum(w["records"] for w in workers) == (
            manifest["records"]["evaluated"]
        )
        summary = summarize_manifest(manifest)
        assert "account for" in summary
        assert "DO NOT" not in summary

    def test_warm_rerun_manifest_reports_zero_evaluated(self, sweep, tmp_path):
        from repro.obs.manifest import load_manifest

        sweep.ensure(SPECS)
        fresh = Sweep(TINY, cache_dir=tmp_path, benchmarks=["db"],
                      mpl_nominals=MPLS)
        fresh.ensure(SPECS)
        manifest = load_manifest(fresh.manifest_path)
        assert manifest["records"]["evaluated"] == 0
        assert manifest["records"]["total"] == len(SPECS) * len(MPLS)
        counters = manifest["metrics"]["counters"]
        assert counters["sweep.cache_rows_loaded"] == len(SPECS) * len(MPLS)

    def test_grid_fingerprint_stability(self):
        from repro.experiments.sweep import grid_fingerprint

        first = grid_fingerprint(SPECS, MPLS)
        assert first == grid_fingerprint(list(SPECS), list(MPLS))
        assert first != grid_fingerprint(SPECS[:1], MPLS)
        assert first != grid_fingerprint(SPECS, (1_000,))
