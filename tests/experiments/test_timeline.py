"""ASCII timeline tests."""

import numpy as np
import pytest

from repro.experiments.timeline import (
    comparison,
    difference_strip,
    phase_ruler,
    strip,
)
from repro.scoring.states import states_from_phases


class TestStrip:
    def test_empty(self):
        assert strip(np.array([], dtype=bool)) == ""

    def test_short_array_one_char_per_element(self):
        states = np.array([True, False, True], dtype=bool)
        assert strip(states, width=10) == "#.#"

    def test_downsampling_majority(self):
        states = states_from_phases([(0, 75)], 100)
        rendered = strip(states, width=4)
        assert rendered == "###."

    def test_width_bound(self):
        states = np.ones(1_000, dtype=bool)
        assert len(strip(states, width=50)) <= 50

    def test_bad_width(self):
        with pytest.raises(ValueError):
            strip(np.ones(4, dtype=bool), width=0)


class TestDifferenceStrip:
    def test_agreement_blank(self):
        states = states_from_phases([(2, 6)], 10)
        assert set(difference_strip(states, states.copy(), width=10)) <= {" "}

    def test_disagreement_marked(self):
        left = states_from_phases([(0, 5)], 10)
        right = states_from_phases([(5, 10)], 10)
        rendered = difference_strip(left, right, width=10)
        assert "x" in rendered

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            difference_strip(np.ones(3, dtype=bool), np.ones(4, dtype=bool))


class TestComparison:
    def test_labels_aligned(self):
        rows = {
            "oracle": states_from_phases([(0, 50)], 100),
            "detector": states_from_phases([(10, 60)], 100),
        }
        rendered = comparison(rows, width=20)
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("oracle  ")
        strips = [line.split()[-1] for line in lines]
        assert len(strips[0]) == len(strips[1])

    def test_diff_row(self):
        rows = {
            "oracle": states_from_phases([(0, 50)], 100),
            "detector": states_from_phases([(50, 100)], 100),
        }
        rendered = comparison(rows, width=20, diff_against="oracle")
        assert "^diff detector" in rendered
        assert "x" in rendered

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            comparison({"a": np.ones(3, dtype=bool), "b": np.ones(4, dtype=bool)})

    def test_empty(self):
        assert comparison({}) == ""


class TestPhaseRuler:
    def test_marks_boundaries(self):
        ruler = phase_ruler(100, [(20, 40)], width=100)
        assert ruler[20] == "|"
        assert ruler[39] == "|"
        assert ruler[0] == " "

    def test_empty_trace(self):
        assert phase_ruler(0, []) == ""

    def test_boundary_at_end(self):
        ruler = phase_ruler(100, [(90, 100)], width=10)
        assert ruler[-1] == "|"
