"""Parallel sweep executor tests: equivalence, ordering, jobs resolution."""

import json

import pytest

from repro.core.config import AnalyzerKind, ModelKind
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.parallel import (
    DEFAULT_CHUNK_SIZE,
    TARGET_CHUNKS_PER_WORKER,
    ParallelSweepExecutor,
    _Progress,
    resolve_jobs,
)
from repro.experiments.sweep import Sweep

TINY = SuiteProfile(
    name="tiny",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

SPECS = [
    ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("constant", 5_000, ModelKind.WEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 5_000, ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, 0.05),
]

MPLS = (1_000, 10_000)
BENCHMARKS = ["db", "jlex"]
CACHE_NAME = "sweep-tiny.jsonl"


def _run_sweep(cache_dir, jobs):
    sweep = Sweep(TINY, cache_dir=cache_dir, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
    records = sweep.ensure(SPECS, jobs=jobs)
    return records, (cache_dir / CACHE_NAME).read_bytes()


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_is_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestChunking:
    def test_explicit_chunk_size(self, tmp_path):
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2, chunk_size=3)
        chunks = executor._chunk_specs(SPECS)
        assert [len(c) for c in chunks] == [3, 1]
        assert [spec for chunk in chunks for spec in chunk] == SPECS

    def test_auto_chunk_size_adapts_to_grid(self, tmp_path):
        # 120 specs / (1 job * 4 target chunks per worker) = 30-spec chunks.
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=1)
        many = SPECS * 30
        chunks = executor._chunk_specs(many)
        expected = -(-len(many) // (1 * TARGET_CHUNKS_PER_WORKER))
        assert [len(c) for c in chunks[:-1]] == [expected] * (len(chunks) - 1)
        assert sum(len(c) for c in chunks) == len(many)
        assert [spec for chunk in chunks for spec in chunk] == many

    def test_auto_chunk_size_floor(self, tmp_path):
        # Small grids never shrink below DEFAULT_CHUNK_SIZE: with many
        # jobs the adaptive divisor would give 1-spec chunks, whose
        # per-chunk overhead swamps the work.
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=8)
        chunks = executor._chunk_specs(SPECS * 4)
        assert all(len(c) <= DEFAULT_CHUNK_SIZE for c in chunks)
        assert len(chunks[0]) == DEFAULT_CHUNK_SIZE

    def test_auto_chunk_size_spreads_across_workers(self, tmp_path):
        # A big grid must yield at least jobs * TARGET_CHUNKS_PER_WORKER
        # chunks so no worker idles while another drains a giant chunk.
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=4)
        many = SPECS * 250  # 1000 specs
        chunks = executor._chunk_specs(many)
        assert len(chunks) >= 4 * TARGET_CHUNKS_PER_WORKER
        assert sum(len(c) for c in chunks) == len(many)


class TestSerialParallelEquivalence:
    def test_records_and_cache_bytes_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_records, serial_cache = _run_sweep(serial_dir, jobs=1)
        parallel_records, parallel_cache = _run_sweep(parallel_dir, jobs=2)
        assert parallel_records == serial_records
        assert parallel_cache == serial_cache

    def test_parallel_run_warms_cache(self, tmp_path):
        first, cache_bytes = _run_sweep(tmp_path, jobs=2)
        fresh = Sweep(
            TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS
        )
        assert len(fresh.records()) == len(first)
        again = fresh.ensure(SPECS, jobs=2)
        assert again == first
        # Nothing was missing, so the cache file must be untouched.
        assert (tmp_path / CACHE_NAME).read_bytes() == cache_bytes

    def test_parallel_completes_interrupted_cache(self, tmp_path):
        serial_dir = tmp_path / "serial"
        serial_records, serial_cache = _run_sweep(serial_dir, jobs=1)
        # Simulate a killed run: keep only a prefix of whole cache lines.
        partial_dir = tmp_path / "partial"
        Sweep(TINY, cache_dir=partial_dir, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
        lines = serial_cache.decode("utf-8").splitlines(keepends=True)
        (partial_dir / CACHE_NAME).write_text("".join(lines[:3]), encoding="utf-8")
        resumed = Sweep(
            TINY, cache_dir=partial_dir, benchmarks=BENCHMARKS, mpl_nominals=MPLS
        )
        records = resumed.ensure(SPECS, jobs=2)
        assert records == serial_records

    def test_torn_cache_tail_recovered_in_parallel(self, tmp_path):
        _run_sweep(tmp_path, jobs=1)
        cache = tmp_path / CACHE_NAME
        with cache.open("a") as handle:
            handle.write('{"benchmark": "db", "trunc')
        fresh = Sweep(
            TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS
        )
        records = fresh.ensure(SPECS, jobs=2)
        assert len(records) == len(SPECS) * len(MPLS) * len(BENCHMARKS)

    def test_cache_rows_are_valid_jsonl(self, tmp_path):
        _, cache_bytes = _run_sweep(tmp_path, jobs=2)
        rows = [json.loads(line) for line in cache_bytes.decode().splitlines()]
        assert all("fingerprint" in row for row in rows)
        assert len(rows) == len(SPECS) * len(MPLS) * len(BENCHMARKS)


class TestProgressEta:
    def test_weighted_eta_tracks_remaining_trace_length(self):
        # 20 configs split over a short and a long trace.  After the 10
        # short-trace configs finish (10% of the weight in 1s), a flat
        # configs/s ETA would claim 1s remaining; the weighted ETA must
        # report the 90% of weight still outstanding: 9s.
        tracker = _Progress(total_configs=20, total_weight=1_000.0, started=0.0)
        tracker.note("tiny", "short", 10, False, weight=100.0)
        assert tracker.eta_seconds(now=1.0) == pytest.approx(9.0)

    def test_eta_falls_back_to_configs_without_weights(self):
        tracker = _Progress(total_configs=20, started=0.0)
        tracker.note("tiny", "short", 10, False)
        assert tracker.eta_seconds(now=1.0) == pytest.approx(1.0)

    def test_eta_zero_before_any_completion(self):
        tracker = _Progress(total_configs=20, total_weight=1_000.0, started=0.0)
        assert tracker.eta_seconds(now=1.0) == 0.0


class TestExecutorOrdering:
    def test_chunks_delivered_in_submission_order(self, tmp_path):
        # Warm the trace cache so workers hit disk, then drive the
        # executor directly with single-spec chunks.
        sweep = Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2, chunk_size=1)
        seen = []

        def on_chunk(benchmark, records, benchmark_finished):
            seen.append((benchmark, [r.cw_nominal for r in records], benchmark_finished))

        work = [(name, SPECS) for name in BENCHMARKS]
        total = executor.run(work, on_chunk, progress=False)
        assert total == len(SPECS) * len(BENCHMARKS)
        benchmarks_seen = [benchmark for benchmark, _, _ in seen]
        assert benchmarks_seen == sorted(
            benchmarks_seen, key=BENCHMARKS.index
        )
        finished_flags = [done for _, _, done in seen]
        assert finished_flags.count(True) == len(BENCHMARKS)
        # The last chunk of each benchmark carries the finished flag.
        assert finished_flags[len(SPECS) - 1] and finished_flags[-1]

    def test_empty_work_is_noop(self, tmp_path):
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2)
        calls = []
        assert executor.run([], calls.append, progress=True) == 0
        assert calls == []
        assert executor.worker_stats == []
        assert executor.worker_metrics == {}


class TestWorkerAccounting:
    def test_worker_records_sum_to_delivered_records(self, tmp_path):
        sweep = Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS)
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2,
                                         chunk_size=1)
        delivered = []

        def on_chunk(benchmark, records, benchmark_finished):
            delivered.extend(records)

        work = [(name, SPECS) for name in BENCHMARKS]
        executor.run(work, on_chunk, progress=False)
        assert executor.worker_stats, "expected at least one worker entry"
        assert sum(w["records"] for w in executor.worker_stats) == len(delivered)
        assert sum(w["configs"] for w in executor.worker_stats) == (
            len(SPECS) * len(BENCHMARKS)
        )
        for stats in executor.worker_stats:
            assert stats["chunks"] >= 1
            assert stats["wall_seconds"] >= 0.0
        # Worker pids are unique and the metrics snapshots are keyed by them.
        pids = [w["pid"] for w in executor.worker_stats]
        assert len(pids) == len(set(pids))
        assert set(executor.worker_metrics) == set(pids)

    def test_worker_metrics_count_trace_cache_hits(self, tmp_path):
        Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2)
        executor.run([(name, SPECS) for name in BENCHMARKS],
                     lambda *args: None, progress=False)
        merged_hits = sum(
            snapshot.get("counters", {}).get("io.trace_cache_hits", 0)
            for snapshot in executor.worker_metrics.values()
        )
        # Every worker loads each benchmark it sees from the warm cache.
        assert merged_hits >= 1

    def test_profiling_collects_chunk_profiles(self, tmp_path):
        Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2,
                                         chunk_size=2, profiling=True)
        executor.run([(name, SPECS) for name in BENCHMARKS],
                     lambda *args: None, progress=False)
        assert executor.chunk_profiles, "profiling mode must collect profiles"
        for profile in executor.chunk_profiles:
            assert profile["wall_seconds"] >= 0.0
            assert profile["peak_bytes"] > 0

    def test_no_profiles_without_profiling(self, tmp_path):
        Sweep(TINY, cache_dir=tmp_path, benchmarks=BENCHMARKS, mpl_nominals=MPLS)
        executor = ParallelSweepExecutor(TINY, tmp_path, MPLS, jobs=2)
        executor.run([(BENCHMARKS[0], SPECS)], lambda *args: None, progress=False)
        assert executor.chunk_profiles == []
