"""Table/figure generator tests on a small real sweep."""

import math

import pytest

from repro.experiments import figures, tables
from repro.experiments.config_space import SuiteProfile, paper_grid
from repro.experiments.sweep import Sweep

PROFILE = SuiteProfile(
    name="tinyfig",
    workload_scale=0.08,
    thresholds=(0.5, 0.6),
    deltas=(0.05,),
    cw_nominals=(500, 1_000, 5_000),
    mpl_nominals=(1_000, 5_000, 10_000),
)
MPLS = (1_000, 5_000, 10_000)
BENCHES = ["db", "jack"]


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    cache = tmp_path_factory.mktemp("sweepcache")
    sweep = Sweep(PROFILE, cache_dir=cache, benchmarks=BENCHES, mpl_nominals=MPLS)
    sweep.ensure(paper_grid(PROFILE))
    return sweep


@pytest.fixture(scope="module")
def records(sweep):
    return sweep.ensure(paper_grid(PROFILE))


class TestTable1a:
    def test_rows_and_render(self, sweep):
        table = tables.table_1a(sweep)
        assert [r.name for r in table.rows] == BENCHES
        text = table.render()
        assert "Dynamic Branches" in text
        assert "db" in text


class TestTable1b:
    def test_structure(self, sweep):
        table = tables.table_1b(sweep, mpl_nominals=MPLS)
        assert set(table.coverage) == set(BENCHES)
        for per_mpl in table.coverage.values():
            counts = [per_mpl[m].num_phases for m in MPLS]
            assert counts == sorted(counts, reverse=True)
        assert "MPL=1K" in table.render()


class TestTable2:
    def test_table_2a_shape(self, records):
        table = tables.table_2a(records, BENCHES, mpl_nominals=MPLS)
        assert set(table.rows) == set(BENCHES)
        for per_family in table.rows.values():
            assert set(per_family) == {"adaptive", "constant", "fixed"}
        text = table.render()
        assert "Average" in text

    def test_table_2b_values_in_range(self, records):
        table = tables.table_2b(records, BENCHES, mpl_nominals=MPLS)
        for smaller, equal, half in table.rows.values():
            for value in (smaller, equal, half):
                assert 0.0 <= value <= 1.0


class TestFigures:
    def test_figure_4_series(self, records):
        figure = figures.figure_4(records, mpl_nominals=MPLS)
        assert set(figure.series) == {
            "Fixed Intervals (skip=CW)",
            "Constant TW (skip=1)",
            "Adaptive TW (skip=1)",
        }
        for values in figure.series.values():
            assert len(values) == len(MPLS)
        assert "Figure 4" in figure.render()

    def test_figure_5_with_and_without(self, records):
        figure = figures.figure_5(
            records, BENCHES, mpl_nominals=MPLS, excluded_benchmark="db"
        )
        with_db = figure.series["Constant unweighted"]
        without_db = figure.series["Constant unweighted w/o db"]
        assert len(with_db) == len(without_db) == len(MPLS)

    def test_figure_6_per_family(self, records):
        results = figures.figure_6(records, PROFILE, mpl_nominals=MPLS)
        assert set(results) == {"constant", "adaptive"}
        for series in results.values():
            assert set(series.series) == {"thr=0.5", "thr=0.6", "avg=0.05"}

    def test_figure_7_improvements(self, records):
        a = figures.figure_7a(records, BENCHES, mpl_nominals=MPLS)
        b = figures.figure_7b(records, BENCHES, mpl_nominals=MPLS)
        assert len(a.improvements) == len(MPLS)
        assert len(b.improvements) == len(MPLS)
        assert "% improvement" in a.render()

    def test_figure_8_series(self, records):
        figure = figures.figure_8(records, mpl_nominals=MPLS)
        assert set(figure.series) == {"Constant TW", "Adaptive TW"}

    def test_nan_rendered_as_dash(self):
        figure = figures.FigureSeries(
            title="x", mpl_nominals=[1_000], series={"s": [float("nan")]}
        )
        assert "-" in figure.render()


class TestReport:
    def test_render_table_alignment(self):
        from repro.experiments.report import render_table

        text = render_table(["name", "value"], [("a", 1.5), ("bb", 20)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_render_rejects_ragged_rows(self):
        from repro.experiments.report import render_table

        with pytest.raises(ValueError):
            render_table(["a", "b"], [("only-one",)])

    def test_nominal_label(self):
        from repro.experiments.report import nominal_label

        assert nominal_label(1_000) == "1K"
        assert nominal_label(200_000) == "200K"
        assert nominal_label(512) == "512"
