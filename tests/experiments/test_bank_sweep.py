"""Bank-vs-serial sweep equivalence: same records, byte-identical cache."""

import json

from repro.core.config import AnalyzerKind, ModelKind
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.runner import BaselineSet, evaluate_bank
from repro.experiments.sweep import Sweep
from repro.workloads.suite import load_traces

TINY = SuiteProfile(
    name="tinybank",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

SPECS = [
    ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("constant", 5_000, ModelKind.WEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 5_000, ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, 0.05),
]

MPLS = (1_000, 10_000)
BENCHMARKS = ["db", "jlex"]
CACHE_NAME = "sweep-tinybank.jsonl"


def _run_sweep(cache_dir, jobs, bank):
    sweep = Sweep(
        TINY,
        cache_dir=cache_dir,
        benchmarks=BENCHMARKS,
        mpl_nominals=MPLS,
        bank=bank,
    )
    records = sweep.ensure(SPECS, jobs=jobs)
    return records, (cache_dir / CACHE_NAME).read_bytes()


class TestBankSerialEquivalence:
    def test_cache_bytes_identical_serial_jobs(self, tmp_path):
        bank_records, bank_cache = _run_sweep(tmp_path / "bank", jobs=1, bank=True)
        solo_records, solo_cache = _run_sweep(tmp_path / "solo", jobs=1, bank=False)
        assert bank_records == solo_records
        assert bank_cache == solo_cache

    def test_cache_bytes_identical_parallel_jobs(self, tmp_path):
        bank_records, bank_cache = _run_sweep(tmp_path / "bank", jobs=2, bank=True)
        solo_records, solo_cache = _run_sweep(tmp_path / "solo", jobs=2, bank=False)
        assert bank_records == solo_records
        assert bank_cache == solo_cache

    def test_manifests_identical_modulo_timing(self, tmp_path):
        _run_sweep(tmp_path / "bank", jobs=2, bank=True)
        _run_sweep(tmp_path / "solo", jobs=2, bank=False)
        manifests = []
        for mode in ("bank", "solo"):
            path = tmp_path / mode / "sweep-tinybank.manifest.json"
            data = json.loads(path.read_text())
            # Strip run-dependent timing/identity, keep the work accounting
            # (fingerprints, grid, record counts).
            for key in ("created_at", "elapsed_seconds", "workers", "metrics",
                        "chunk_profiles", "environment"):
                data.pop(key, None)
            manifests.append(data)
        assert manifests[0] == manifests[1]


class TestEvaluateBank:
    def _fixtures(self, tmp_path):
        trace, _ = load_traces(
            BENCHMARKS[0], scale=TINY.workload_scale, cache_dir=tmp_path
        )
        baselines = BaselineSet.for_benchmark(
            BENCHMARKS[0], TINY, MPLS, cache_dir=tmp_path
        )
        return trace, baselines

    def test_banked_records_equal_serial_records(self, tmp_path):
        trace, baselines = self._fixtures(tmp_path)
        banked = evaluate_bank(trace, baselines, SPECS, TINY, bank=True)
        serial = evaluate_bank(trace, baselines, SPECS, TINY, bank=False)
        assert banked == serial
        assert len(banked) == len(SPECS) * len(MPLS)

    def test_batching_respects_bank_size(self, tmp_path):
        """bank_size smaller than the spec list still covers every spec
        in order (multiple bank batches)."""
        trace, baselines = self._fixtures(tmp_path)
        batched = evaluate_bank(
            trace, baselines, SPECS, TINY, bank=True, bank_size=2
        )
        serial = evaluate_bank(trace, baselines, SPECS, TINY, bank=False)
        assert batched == serial
