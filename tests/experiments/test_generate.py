"""Artifact-regeneration (generate.py) tests on a tiny profile."""

import pytest

from repro.experiments.config_space import SuiteProfile
from repro.experiments.generate import generate_all
from repro.experiments.sweep import Sweep

TINY = SuiteProfile(
    name="tinygen",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

EXPECTED = {
    "table_1a",
    "table_1b",
    "table_2a",
    "table_2b",
    "figure_4",
    "figure_5",
    "figure_6_constant",
    "figure_6_adaptive",
    "figure_7a",
    "figure_7b",
    "figure_8",
    "detail_best_constant",
    "detail_best_adaptive",
    "detail_winner_policy",
    "detail_winner_model",
}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    cache = tmp_path_factory.mktemp("gencache")
    out = tmp_path_factory.mktemp("genout")
    sweep = Sweep(TINY, cache_dir=cache, benchmarks=["db", "jack"])
    result = generate_all(TINY, out_dir=out, sweep=sweep)
    return result, out


class TestGenerateAll:
    def test_all_artifacts_present(self, artifacts):
        result, _ = artifacts
        assert set(result) == EXPECTED

    def test_files_written(self, artifacts):
        result, out = artifacts
        for name in EXPECTED:
            path = out / f"{name}.txt"
            assert path.exists(), name
            assert path.read_text().strip() == result[name].strip()

    def test_artifacts_render_nonempty(self, artifacts):
        result, _ = artifacts
        for name, text in result.items():
            assert len(text.splitlines()) >= 3, name

    def test_regeneration_is_stable(self, artifacts, tmp_path_factory):
        result, _ = artifacts
        cache = tmp_path_factory.getbasetemp() / "gencache0"
        sweep = Sweep(TINY, cache_dir=cache, benchmarks=["db", "jack"])
        again = generate_all(TINY, sweep=sweep)
        assert again == result
