"""Extra report-rendering edge cases."""

import pytest

from repro.experiments.report import format_cell, nominal_label, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456, precision=2) == "0.12"
        assert format_cell(0.123456) == "0.123"

    def test_bool_not_formatted_as_float(self):
        assert format_cell(True) == "True"

    def test_int_passthrough(self):
        assert format_cell(1500) == "1500"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_numeric_right_aligned(self):
        text = render_table(["name", "n"], [("a", 5), ("bbbb", 12345)])
        lines = text.splitlines()
        # numeric column right-aligned: last char of header row and data
        # rows line up on the digit column
        assert lines[-1].endswith("12345")
        assert lines[-2].endswith("    5")

    def test_title_underlined(self):
        text = render_table(["x"], [(1,)], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_mixed_column_left_aligned(self):
        text = render_table(["v"], [(1,), ("x",)])
        assert "x" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestNominalLabel:
    @pytest.mark.parametrize("value,label", [
        (500, "500"),
        (1_000, "1K"),
        (25_000, "25K"),
        (200_000, "200K"),
        (1_500, "1500"),
    ])
    def test_labels(self, value, label):
        assert nominal_label(value) == label
