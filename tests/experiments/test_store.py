"""Chunk store, compaction and result-database tests.

Most tests push deterministic *synthetic* records through the
persistence layer — byte serialization, leases, compaction and SQLite
never look inside the scores, so no detector needs to run.  The
end-to-end class at the bottom drives real (tiny) sweeps.
"""

import json
import threading

import pytest

from repro.core.config import AnalyzerKind, ModelKind
from repro.experiments import aggregate
from repro.experiments.config_space import ConfigSpec, SuiteProfile
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.runner import SweepRecord
from repro.experiments.store import (
    ChunkStore,
    ResultDB,
    StoreError,
    cache_line,
    chunk_cells,
    chunk_folded,
    chunk_key,
    compact_chunks,
    open_readonly,
    plan_chunks,
    spec_chunk_hash,
)
from repro.experiments.sweep import Sweep

SPECS = [
    ConfigSpec("constant", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 500, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("constant", 5_000, ModelKind.WEIGHTED, AnalyzerKind.THRESHOLD, 0.6),
    ConfigSpec("adaptive", 5_000, ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, 0.05),
    ConfigSpec("constant", 1_000, ModelKind.WEIGHTED, AnalyzerKind.AVERAGE, 0.2),
    ConfigSpec("fixed", 1_000, ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD, 0.5),
]

MPLS = (1_000, 10_000)
BENCHMARKS = ["db", "jess"]
FINGERPRINTS = {"db": "fp-db", "jess": "fp-jess"}
PROFILE = "tiny"


def synthetic_record(benchmark, spec, mpl, salt):
    """A shape-identical stand-in for a real sweep record."""
    return SweepRecord(
        benchmark=benchmark,
        family=spec.family,
        cw_nominal=spec.cw_nominal,
        model=spec.model.value,
        analyzer=spec.analyzer_label(),
        anchor=spec.anchor.value,
        resize=spec.resize.value,
        mpl_nominal=mpl,
        score=round(salt / 97.0, 6),
        correlation=round(salt / 194.0, 6),
        sensitivity=round(salt / 97.0, 6),
        false_positives=float(salt % 7),
        corrected_score=round(salt / 130.0, 6),
        num_detected_phases=salt % 11,
        num_baseline_phases=7,
    )


def chunker_of(size):
    def chunker(items):
        return [list(items[i : i + size]) for i in range(0, len(items), size)]

    return chunker


def make_plan(chunk_size=2, specs=None, benchmarks=None):
    specs = SPECS if specs is None else specs
    benchmarks = BENCHMARKS if benchmarks is None else benchmarks
    work = [(name, specs) for name in benchmarks]
    return plan_chunks(work, FINGERPRINTS, PROFILE, MPLS, chunker_of(chunk_size))


def chunk_records(chunk):
    """Deterministic synthetic records for one planned chunk."""
    return [
        synthetic_record(
            chunk.benchmark, spec, mpl,
            (chunk.index * 1_009 + position * 17 + mpl) % 97,
        )
        for position, spec in enumerate(chunk.specs)
        for mpl in chunk.mpl_nominals
    ]


def chunk_lines(chunk):
    fingerprint = FINGERPRINTS[chunk.benchmark]
    return [cache_line(record, fingerprint) for record in chunk_records(chunk)]


def write_chunk(store, chunk):
    store.write(
        chunk.key,
        benchmark=chunk.benchmark,
        fingerprint=chunk.fingerprint,
        configs=len(chunk.specs),
        lines=chunk_lines(chunk),
    )


def serial_bytes(planned):
    """What a serial sweep would append for ``planned``, in plan order."""
    return "".join("".join(chunk_lines(chunk)) for chunk in planned).encode("utf-8")


class TestKeys:
    def test_chunk_key_deterministic(self):
        a = chunk_key(PROFILE, "db", "fp-db", SPECS, MPLS)
        b = chunk_key(PROFILE, "db", "fp-db", list(SPECS), tuple(MPLS))
        assert a == b
        assert len(a) == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"profile_name": "other"},
            {"benchmark": "jess"},
            {"fingerprint": "fp-other"},
            {"specs": SPECS[:3]},
            {"specs": SPECS[::-1]},
            {"mpl_nominals": (1_000,)},
        ],
    )
    def test_chunk_key_sensitive_to_every_input(self, kwargs):
        base = dict(
            profile_name=PROFILE, benchmark="db", fingerprint="fp-db",
            specs=SPECS, mpl_nominals=MPLS,
        )
        assert chunk_key(**base) != chunk_key(**{**base, **kwargs})

    def test_spec_chunk_hash_order_sensitive(self):
        assert spec_chunk_hash(SPECS) != spec_chunk_hash(SPECS[::-1])


class TestPlan:
    def test_plan_is_deterministic(self):
        assert make_plan() == make_plan()

    def test_plan_order_and_payload(self):
        planned = make_plan(chunk_size=4)
        assert [c.index for c in planned] == list(range(len(planned)))
        assert [c.benchmark for c in planned] == ["db", "db", "jess", "jess"]
        for chunk in planned:
            assert chunk.fingerprint == FINGERPRINTS[chunk.benchmark]
            assert chunk.mpl_nominals == MPLS
        # Concatenating the spec slices reproduces the grid.
        db_specs = [s for c in planned if c.benchmark == "db" for s in c.specs]
        assert db_specs == SPECS

    def test_chunk_cells_match_written_rows(self):
        chunk = make_plan(chunk_size=3)[0]
        from_rows = {
            tuple(
                json.loads(line)[field]
                for field in ("benchmark", "fingerprint", "family", "cw_nominal",
                              "model", "analyzer", "anchor", "resize", "mpl_nominal")
            )
            for line in chunk_lines(chunk)
        }
        assert chunk_cells(chunk) == from_rows


class TestChunkFile:
    def test_write_read_round_trip(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        chunk = make_plan()[0]
        write_chunk(store, chunk)
        header, lines = store.read(chunk.key)
        assert header["key"] == chunk.key
        assert header["benchmark"] == chunk.benchmark
        assert header["rows"] == len(lines)
        assert lines == chunk_lines(chunk)
        assert store.has(chunk.key)
        assert store.keys() == {chunk.key}

    def test_torn_chunk_reads_as_missing(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        chunk = make_plan()[0]
        write_chunk(store, chunk)
        path = store.chunk_path(chunk.key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])  # torn tail
        assert store.read(chunk.key) is None
        assert not store.has(chunk.key)

    def test_wrong_key_header_rejected(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        a, b = make_plan()[:2]
        write_chunk(store, a)
        store.chunk_path(a.key).rename(store.chunk_path(b.key))
        assert store.read(b.key) is None

    def test_missing_lists_resume_set(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned[::2]:
            write_chunk(store, chunk)
        assert store.missing(planned) == planned[1::2]


class TestLeases:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        assert store.claim("k1")
        assert not store.claim("k1")
        store.release("k1")
        assert store.claim("k1")

    def test_expired_lease_is_stolen(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        assert store.claim("k1", ttl=0.0)
        assert store.claim("k1", ttl=0.0)  # 0-TTL lease is instantly stale

    def test_unexpired_lease_blocks_steal(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        assert store.claim("k1", ttl=60.0)
        assert not store.claim("k1", ttl=0.0)  # steal honors holder's TTL

    def test_unreadable_lease_treated_as_expired(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        store.root.mkdir(parents=True, exist_ok=True)
        store.lease_path("k1").write_text("torn{", encoding="utf-8")
        assert store.claim("k1")

    def test_claim_race_single_winner(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        wins = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if store.claim("k1", ttl=60.0):
                wins.append(1)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_lock_is_mutually_exclusive(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        active = []
        overlaps = []

        def hold():
            with store.lock("compact", ttl=60.0):
                active.append(1)
                overlaps.append(len(active))
                active.pop()

        threads = [threading.Thread(target=hold) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert overlaps == [1, 1, 1, 1]


class TestCompaction:
    def test_out_of_order_writes_compact_byte_identical(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned[::-1]:  # written in reverse completion order
            write_chunk(store, chunk)
        cache = tmp_path / "cache.jsonl"
        summary = compact_chunks(store, planned, cache)
        assert summary["folded"] == len(planned)
        assert cache.read_bytes() == serial_bytes(planned)

    def test_compaction_appends_after_existing_rows(self, tmp_path):
        # A resumed sweep folds only what a previous serial run did not
        # already append.
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        head, tail = planned[:1], planned[1:]
        cache = tmp_path / "cache.jsonl"
        cache.write_bytes(serial_bytes(head))
        for chunk in planned:
            write_chunk(store, chunk)
        summary = compact_chunks(store, planned, cache)
        assert summary["folded"] == len(tail)
        assert summary["skipped"] == len(head)
        assert cache.read_bytes() == serial_bytes(planned)

    def test_double_compaction_is_idempotent(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned:
            write_chunk(store, chunk)
        cache = tmp_path / "cache.jsonl"
        compact_chunks(store, planned, cache)
        before = cache.read_bytes()
        # Chunk files are gc'd; the second compactor recognizes every
        # chunk as already folded from its plan-derived cells alone.
        summary = compact_chunks(store, planned, cache)
        assert summary["folded"] == 0
        assert summary["skipped"] == len(planned)
        assert cache.read_bytes() == before

    def test_gc_removes_store_root(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned:
            write_chunk(store, chunk)
        compact_chunks(store, planned, tmp_path / "cache.jsonl")
        assert not store.root.exists()

    def test_missing_unfolded_chunk_raises(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned[:-1]:
            write_chunk(store, chunk)
        with pytest.raises(StoreError):
            compact_chunks(store, planned, tmp_path / "cache.jsonl")

    def test_chunk_folded_distinguishes_gcd_from_unwritten(self, tmp_path):
        planned = make_plan()
        cache = tmp_path / "cache.jsonl"
        cache.write_bytes(serial_bytes(planned[:1]))
        assert chunk_folded(planned[0], cache)
        assert not chunk_folded(planned[1], cache)


def _db(tmp_path):
    return ResultDB(tmp_path / "results.sqlite")


def _write_cache(tmp_path, planned):
    cache = tmp_path / "cache.jsonl"
    cache.write_bytes(serial_bytes(planned))
    return cache


class TestResultDB:
    def test_sync_round_trips_records(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        with _db(tmp_path) as db:
            assert db.sync_from_cache(cache, PROFILE) == sum(
                len(c.specs) * len(MPLS) for c in planned
            )
            loaded = db.load_records(PROFILE)
        expected = [r for c in planned for r in chunk_records(c)]
        assert loaded == expected

    def test_incremental_sync_reads_only_the_tail(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned[:2])
        with _db(tmp_path) as db:
            first = db.sync_from_cache(cache, PROFILE)
            with cache.open("ab") as handle:
                handle.write(serial_bytes(planned[2:]))
            second = db.sync_from_cache(cache, PROFILE)
            assert (first, second) == (
                sum(len(c.specs) * len(MPLS) for c in planned[:2]),
                sum(len(c.specs) * len(MPLS) for c in planned[2:]),
            )
            assert db.load_records(PROFILE) == [
                r for c in planned for r in chunk_records(c)
            ]

    def test_last_row_wins_like_the_cache(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        rewrite = synthetic_record("db", SPECS[0], MPLS[0], salt=96)
        with cache.open("a", encoding="utf-8") as handle:
            handle.write(cache_line(rewrite, FINGERPRINTS["db"]))
        with _db(tmp_path) as db:
            db.sync_from_cache(cache, PROFILE)
            loaded = db.load_records(PROFILE)
        match = [r for r in loaded if r.benchmark == "db"
                 and r.family == SPECS[0].family
                 and r.cw_nominal == SPECS[0].cw_nominal
                 and r.model == SPECS[0].model.value
                 and r.analyzer == SPECS[0].analyzer_label()
                 and r.mpl_nominal == MPLS[0]]
        assert match == [rewrite]

    def test_torn_tail_is_deferred_to_next_sync(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        with cache.open("ab") as handle:
            handle.write(b'{"benchmark": "db", "truncat')  # append in progress
        with _db(tmp_path) as db:
            full_rows = db.sync_from_cache(cache, PROFILE)
            assert full_rows == sum(len(c.specs) * len(MPLS) for c in planned)
            # Finishing the line later ingests it (offset stopped short).
            rewrite = synthetic_record("db", SPECS[0], MPLS[0], salt=42)
            cache.write_bytes(
                serial_bytes(planned)
                + cache_line(rewrite, FINGERPRINTS["db"]).encode("utf-8")
            )
            assert db.sync_from_cache(cache, PROFILE) == 1

    def test_shrunken_cache_triggers_full_rebuild(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        with _db(tmp_path) as db:
            db.sync_from_cache(cache, PROFILE)
            cache.write_bytes(serial_bytes(planned[:1]))  # rebuilt smaller
            db.sync_from_cache(cache, PROFILE)
            assert db.load_records(PROFILE) == chunk_records(planned[0])

    def test_best_scores_matches_python_aggregation(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        records = [r for c in planned for r in chunk_records(c)]
        with _db(tmp_path) as db:
            db.sync_from_cache(cache, PROFILE)
            columns, rows = db.best_scores(PROFILE, by=("family", "benchmark"))
        assert columns == ["family", "benchmark", "best_score", "records"]
        expected = aggregate.best_by(records, key=lambda r: (r.family, r.benchmark))
        assert {tuple(row[:2]): row[2] for row in rows} == expected

    def test_best_scores_where_filters(self, tmp_path):
        planned = make_plan()
        cache = _write_cache(tmp_path, planned)
        records = [r for c in planned for r in chunk_records(c)]
        with _db(tmp_path) as db:
            db.sync_from_cache(cache, PROFILE)
            _, rows = db.best_scores(
                PROFILE, by=("benchmark",), metric="corrected_score",
                where={"mpl_nominal": MPLS[0], "family": "constant"},
            )
        expected = aggregate.best_by(
            records,
            key=lambda r: (r.benchmark,),
            where=lambda r: r.mpl_nominal == MPLS[0] and r.family == "constant",
            value=lambda r: r.corrected_score,
        )
        assert {(row[0],): row[1] for row in rows} == expected

    def test_unknown_dimension_metric_and_filter_rejected(self, tmp_path):
        with _db(tmp_path) as db:
            with pytest.raises(ValueError):
                db.best_scores(PROFILE, by=("no_such_column",))
            with pytest.raises(ValueError):
                db.best_scores(PROFILE, metric="seq")
            with pytest.raises(ValueError):
                db.best_scores(PROFILE, where={"profile": "x"})

    def test_record_run_and_readonly_sql(self, tmp_path):
        with _db(tmp_path) as db:
            db.record_run(PROFILE, "grid-abc", jobs=4, elapsed_seconds=1.5,
                          records_evaluated=10, records_total=24)
            runs = db.runs()
            path = db.path
        assert len(runs) == 1
        assert runs[0]["grid_fingerprint"] == "grid-abc"
        assert runs[0]["jobs"] == 4
        conn = open_readonly(path)
        try:
            assert conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0] == 1
            with pytest.raises(Exception):
                conn.execute("INSERT INTO meta VALUES ('x', 'y')")
        finally:
            conn.close()

    def test_compaction_syncs_db_inline(self, tmp_path):
        store = ChunkStore(tmp_path, PROFILE)
        planned = make_plan()
        for chunk in planned:
            write_chunk(store, chunk)
        cache = tmp_path / "cache.jsonl"
        with _db(tmp_path) as db:
            compact_chunks(store, planned, cache, db=db)
            assert db.load_records(PROFILE) == [
                r for c in planned for r in chunk_records(c)
            ]


TINY = SuiteProfile(
    name="tiny",
    workload_scale=0.08,
    thresholds=(0.6,),
    deltas=(0.05,),
    cw_nominals=(500, 5_000),
)

SWEEP_SPECS = SPECS[:4]
CACHE_NAME = "sweep-tiny.jsonl"


class TestEndToEndStore:
    def _serial_bytes(self, tmp_path):
        serial_dir = tmp_path / "serial"
        sweep = Sweep(TINY, cache_dir=serial_dir, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS, store=False)
        records = sweep.ensure(SWEEP_SPECS, jobs=1, manifest=False)
        return records, (serial_dir / CACHE_NAME).read_bytes()

    def test_store_sweep_cache_matches_serial_bytes(self, tmp_path):
        serial_records, ref = self._serial_bytes(tmp_path)
        store_dir = tmp_path / "store"
        sweep = Sweep(TINY, cache_dir=store_dir, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS, store=True)
        records = sweep.ensure(SWEEP_SPECS, jobs=2, manifest=False)
        assert (store_dir / CACHE_NAME).read_bytes() == ref
        assert records == serial_records
        assert not (store_dir / "sweep-tiny.chunks").exists()
        # The result database was synced during the same ensure().
        with ResultDB(sweep.db_path) as db:
            assert db.load_records(TINY.name) == serial_records
            assert len(db.runs()) == 1

    def test_interrupted_sweep_resumes_exactly_the_missing_chunks(self, tmp_path):
        _, ref = self._serial_bytes(tmp_path)
        kill_dir = tmp_path / "kill"
        work = [(name, SWEEP_SPECS) for name in BENCHMARKS]
        sweep = Sweep(TINY, cache_dir=kill_dir, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS, store=True)
        fingerprints = {name: sweep._fingerprint(name) for name in BENCHMARKS}

        class Abort(Exception):
            pass

        def abort_after_first(chunk, kind):
            raise Abort

        executor = ParallelSweepExecutor(TINY, kill_dir, MPLS, jobs=2,
                                         chunk_size=2)
        store = ChunkStore(kill_dir, TINY.name)
        with pytest.raises(Abort):
            executor.run_store(work, store, fingerprints,
                               on_chunk_done=abort_after_first, lease_ttl=0.2)
        survivors = store.keys()
        assert survivors  # at least the chunk that triggered the abort

        resume = ParallelSweepExecutor(TINY, kill_dir, MPLS, jobs=2,
                                       chunk_size=2)
        store2 = ChunkStore(kill_dir, TINY.name)
        stats = resume.run_store(work, store2, fingerprints, lease_ttl=0.2)
        planned_keys = {chunk.key for chunk in resume.planned}
        assert stats["reused"] == len(survivors & planned_keys)
        # Exactly the missing chunks were evaluated — by pool or steal.
        assert stats["evaluated"] == len(planned_keys - survivors)
        compact_chunks(store2, resume.planned, kill_dir / CACHE_NAME)
        assert (kill_dir / CACHE_NAME).read_bytes() == ref

    def test_two_executors_share_one_results_dir(self, tmp_path):
        _, ref = self._serial_bytes(tmp_path)
        shared = tmp_path / "shared"
        results = {}
        errors = {}

        def run(tag):
            try:
                sweep = Sweep(TINY, cache_dir=shared, benchmarks=BENCHMARKS,
                              mpl_nominals=MPLS, store=True)
                sweep.ensure(SWEEP_SPECS, jobs=2, manifest=False)
                results[tag] = dict(sweep._last_chunk_stats)
            except Exception as exc:  # noqa: BLE001 - re-raised via assert
                errors[tag] = exc

        threads = [threading.Thread(target=run, args=(tag,)) for tag in "AB"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        planned = results["A"]["planned"]
        for stats in results.values():
            assert stats["planned"] == planned
            covered = stats["evaluated"] + stats["reused"] + stats["external"]
            assert covered >= planned
        # No lost chunk: the shared cache is byte-identical to serial.
        assert (shared / CACHE_NAME).read_bytes() == ref

    def test_figures_from_db_match_figures_from_records(self, tmp_path):
        from repro.experiments.generate import render_from_records

        store_dir = tmp_path / "store"
        sweep = Sweep(TINY, cache_dir=store_dir, benchmarks=BENCHMARKS,
                      mpl_nominals=MPLS, store=True)
        records = sweep.ensure(SWEEP_SPECS, jobs=2, manifest=False)
        direct = render_from_records(records, BENCHMARKS, TINY)
        with ResultDB(sweep.db_path) as db:
            loaded = db.load_records(TINY.name)
            benchmarks = db.benchmarks(TINY.name)
        assert sorted(benchmarks) == sorted(BENCHMARKS)
        assert render_from_records(loaded, benchmarks, TINY) == direct
