"""Aggregation helper tests."""

import math

import pytest

from repro.experiments.aggregate import (
    and_,
    average_best_score,
    best_by,
    cw_at_most_half,
    cw_equal,
    cw_larger,
    cw_smaller,
    default_adaptive,
    enough_phases,
    family_default,
    family_is,
    mean,
    percent_improvement,
)
from repro.experiments.runner import SweepRecord


def record(benchmark="b", family="constant", cw=500, mpl=1_000, score=0.5,
           anchor="rn", resize="slide", phases=5, corrected=None):
    return SweepRecord(
        benchmark=benchmark,
        family=family,
        cw_nominal=cw,
        model="unweighted",
        analyzer="thr=0.5",
        anchor=anchor,
        resize=resize,
        mpl_nominal=mpl,
        score=score,
        correlation=score,
        sensitivity=score,
        false_positives=0.0,
        corrected_score=corrected if corrected is not None else score,
        num_detected_phases=3,
        num_baseline_phases=phases,
    )


class TestBestBy:
    def test_max_per_key(self):
        records = [record(score=0.3), record(score=0.8), record(benchmark="c", score=0.5)]
        best = best_by(records, key=lambda r: (r.benchmark,))
        assert best == {("b",): 0.8, ("c",): 0.5}

    def test_where_filters(self):
        records = [record(score=0.9, family="fixed"), record(score=0.4)]
        best = best_by(records, key=lambda r: (), where=family_is("constant"))
        assert best == {(): 0.4}

    def test_custom_value(self):
        records = [record(score=0.2, corrected=0.9)]
        best = best_by(records, key=lambda r: (), value=lambda r: r.corrected_score)
        assert best == {(): 0.9}


class TestAverageBest:
    def test_average_over_benchmarks(self):
        records = [
            record(benchmark="a", score=0.4),
            record(benchmark="a", score=0.6),
            record(benchmark="b", score=1.0),
        ]
        assert average_best_score(records) == pytest.approx((0.6 + 1.0) / 2)

    def test_benchmark_subset(self):
        records = [record(benchmark="a", score=0.4), record(benchmark="b", score=1.0)]
        assert average_best_score(records, benchmarks=["a"]) == pytest.approx(0.4)

    def test_empty_returns_nan(self):
        assert math.isnan(average_best_score([], where=lambda r: True))


class TestPredicates:
    def test_cw_relations(self):
        smaller = record(cw=500, mpl=1_000)
        equal = record(cw=1_000, mpl=1_000)
        larger = record(cw=5_000, mpl=1_000)
        assert cw_smaller(smaller) and not cw_smaller(equal)
        assert cw_equal(equal) and not cw_equal(larger)
        assert cw_larger(larger) and not cw_larger(smaller)

    def test_cw_at_most_half(self):
        assert cw_at_most_half(record(cw=500, mpl=1_000))
        assert not cw_at_most_half(record(cw=501, mpl=1_000))

    def test_enough_phases(self):
        assert enough_phases(record(phases=3))
        assert not enough_phases(record(phases=2))

    def test_default_adaptive(self):
        assert default_adaptive(record(family="adaptive"))
        assert not default_adaptive(record(family="adaptive", anchor="lnn"))
        assert not default_adaptive(record(family="constant"))

    def test_family_default_pins_adaptive(self):
        predicate = family_default("adaptive")
        assert predicate(record(family="adaptive"))
        assert not predicate(record(family="adaptive", resize="move"))
        assert family_default("fixed")(record(family="fixed"))

    def test_and_(self):
        predicate = and_(family_is("constant"), cw_smaller)
        assert predicate(record(cw=500, mpl=1_000))
        assert not predicate(record(cw=5_000, mpl=1_000))


class TestScalars:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percent_improvement(self):
        assert percent_improvement(1.1, 1.0) == pytest.approx(10.0)
        assert percent_improvement(0.9, 1.0) == pytest.approx(-10.0)
        assert percent_improvement(1.0, 0.0) == 0.0
