"""Frequency-distinguished phases: the Figure 5 compress-anomaly mechanism.

The paper's one benchmark where the weighted model clearly beats the
unweighted model is compress.  The mechanism is isolated here: when two
behaviors share the same branch *sites* and differ only in outcome
*frequencies*, the unweighted working-set model is blind (similarity
stays 1.0 across the boundary) while the weighted model sees the mass
shift.  See ``repro/workloads/compress_wl.py`` for why the workload
suite does not bake this structure into compress itself (it also
defeats RN/LNN anchoring, inverting Figure 8).
"""

import random

import pytest

from repro.core import DetectorConfig, ModelKind
from repro.core.engine import run_detector
from repro.profiles.trace import BranchTrace


def frequency_phased_trace(seed=3, region_length=3_000):
    """Two regions over the SAME three elements with opposite frequency
    mixes, repeated twice: A B A B."""
    rng = random.Random(seed)
    elements = [100, 200, 300]
    mix_a = [0.70, 0.20, 0.10]
    mix_b = [0.10, 0.20, 0.70]
    data = []
    boundaries = []
    for mix in (mix_a, mix_b, mix_a, mix_b):
        boundaries.append(len(data))
        data.extend(rng.choices(elements, weights=mix, k=region_length))
    return BranchTrace(data, name="freq-phased"), boundaries[1:]


class TestFrequencyOnlyPhases:
    def test_unweighted_model_is_blind(self):
        trace, _ = frequency_phased_trace()
        config = DetectorConfig(cw_size=150, model=ModelKind.UNWEIGHTED, threshold=0.8)
        result = run_detector(trace, config)
        # Same three elements everywhere: similarity is 1.0 once the
        # windows fill, so the whole trace is one undifferentiated phase.
        assert len(result.detected_phases) == 1
        assert result.detected_phases[0].end == len(trace)

    def test_weighted_model_sees_the_mass_shift(self):
        trace, boundaries = frequency_phased_trace()
        config = DetectorConfig(cw_size=150, model=ModelKind.WEIGHTED, threshold=0.8)
        result = run_detector(trace, config)
        # The weighted model breaks the trace at (or shortly after)
        # every mix change.
        assert len(result.detected_phases) >= 3
        ends = [p.end for p in result.detected_phases]
        for boundary in boundaries:
            assert any(
                boundary <= end <= boundary + 400 for end in ends
            ), (boundary, ends)

    def test_weighted_similarity_across_mix_change(self):
        """The cross-boundary weighted similarity equals the overlap of
        the two mixes: sum of min frequencies = .1 + .2 + .1 = ~0.4."""
        from repro.core.models import WeightedSetModel

        rng = random.Random(9)
        region_a = rng.choices([1, 2, 3], weights=[0.7, 0.2, 0.1], k=2_000)
        region_b = rng.choices([1, 2, 3], weights=[0.1, 0.2, 0.7], k=2_000)
        model = WeightedSetModel(cw_capacity=1_000, tw_capacity=1_000)
        model.push(region_a[:1_000])   # TW <- pure mix A
        model.push(region_b[:1_000])   # CW <- pure mix B
        assert model.similarity() == pytest.approx(0.4, abs=0.07)

    def test_unweighted_similarity_across_mix_change_is_one(self):
        from repro.core.models import UnweightedSetModel

        rng = random.Random(9)
        region_a = rng.choices([1, 2, 3], weights=[0.7, 0.2, 0.1], k=1_000)
        region_b = rng.choices([1, 2, 3], weights=[0.1, 0.2, 0.7], k=1_000)
        model = UnweightedSetModel(cw_capacity=1_000, tw_capacity=1_000)
        model.push(region_a + region_b)
        assert model.similarity() == pytest.approx(1.0)
