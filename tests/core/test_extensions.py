"""Extension model/analyzer tests."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.extensions import (
    AsymmetricWeightedModel,
    EwmaAnalyzer,
    JaccardSetModel,
    build_extended_detector,
)
from repro.core.state import PhaseState
from repro.profiles.synthetic import SyntheticTraceBuilder
from repro.scoring import score_states

P, T = PhaseState.PHASE, PhaseState.TRANSITION


def fill(model, trailing, current):
    model.push(list(trailing) + list(current))
    return model


class TestJaccardModel:
    def test_identical_windows(self):
        model = fill(JaccardSetModel(3, 3), [1, 2, 3], [3, 2, 1])
        assert model.similarity() == pytest.approx(1.0)

    def test_partial_overlap(self):
        model = fill(JaccardSetModel(2, 2), ["a", "c"], ["a", "b"])
        # intersection {a}, union {a, b, c} -> 1/3
        assert model.similarity() == pytest.approx(1 / 3)

    def test_symmetry_penalizes_tw_only_elements(self):
        from repro.core.models import UnweightedSetModel

        asymmetric = fill(UnweightedSetModel(1, 3), ["a", "x", "y"], ["a"])
        symmetric = fill(JaccardSetModel(1, 3), ["a", "x", "y"], ["a"])
        assert asymmetric.similarity() == pytest.approx(1.0)  # CW fully covered
        assert symmetric.similarity() == pytest.approx(1 / 3)

    def test_incremental_consistency_under_sliding(self):
        model = JaccardSetModel(4, 6)
        for element in [i % 7 for i in range(300)]:
            model.push([element])
            if model.filled:
                cw = set(model.cw_counts)
                tw = set(model.tw_counts)
                expected = len(cw & tw) / len(cw | tw)
                assert model.similarity() == pytest.approx(expected)


class TestAsymmetricWeightedModel:
    def test_identical_distributions(self):
        model = fill(AsymmetricWeightedModel(4, 8), [1, 1, 2, 2] * 2, [1, 1, 2, 2])
        assert model.similarity() == pytest.approx(1.0)

    def test_ignores_tw_only_mass(self):
        # TW has huge mass on 'd' which the CW never touches.
        trailing = ["a"] * 5 + ["d"] * 95
        current = ["a"] * 10
        model = fill(AsymmetricWeightedModel(10, 100), trailing, current)
        # Restricted TW = {a: 5}; relative weights match exactly.
        assert model.similarity() == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        model = fill(AsymmetricWeightedModel(2, 2), [1, 2], [3, 4])
        assert model.similarity() == 0.0

    def test_frequency_sensitive(self):
        from repro.core.extensions import JaccardSetModel

        # Same sets, different frequencies: weighted notices, Jaccard not.
        trailing = ["a"] * 9 + ["b"]
        current = ["a"] + ["b"] * 9
        weighted = fill(AsymmetricWeightedModel(10, 10), trailing, current)
        jaccard = fill(JaccardSetModel(10, 10), trailing, current)
        assert jaccard.similarity() == pytest.approx(1.0)
        assert weighted.similarity() < 0.5


class TestEwmaAnalyzer:
    def test_entry_threshold(self):
        analyzer = EwmaAnalyzer(delta=0.05, enter_threshold=0.6)
        assert analyzer.process_value(0.59, T) is T
        assert analyzer.process_value(0.61, T) is P

    def test_forgets_old_values_under_slow_drift(self):
        fast = EwmaAnalyzer(delta=0.02, alpha=0.9)
        slow = EwmaAnalyzer(delta=0.02, alpha=0.01)
        for analyzer in (fast, slow):
            analyzer.reset_stats(0.95)
        # Slow drift downward, 0.01 per step for 15 steps.
        values = [0.95 - 0.01 * step for step in range(1, 16)]
        fast_states = []
        slow_states = []
        for value in values:
            fast_states.append(fast.process_value(value, P))
            fast.update_stats(value)
            slow_states.append(slow.process_value(value, P))
            slow.update_stats(value)
        # The fast EWMA tracks the drift and stays in phase throughout;
        # the slow one is anchored near the seed and eventually drops out.
        assert all(state is P for state in fast_states)
        assert slow_states[-1] is T

    def test_clear_resets(self):
        analyzer = EwmaAnalyzer(delta=0.5, enter_threshold=0.9)
        analyzer.reset_stats(0.95)
        analyzer.clear()
        assert analyzer.process_value(0.5, P) is T

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EwmaAnalyzer(delta=0.1, alpha=0.0)
        with pytest.raises(ValueError):
            EwmaAnalyzer(delta=2.0)


class TestExtendedDetector:
    def _trace(self):
        builder = SyntheticTraceBuilder(seed=41)
        builder.add_transition(300)
        builder.add_phase(2_500, body_size=12)
        builder.add_transition(300)
        builder.add_phase(2_500, body_size=9)
        builder.add_transition(300)
        return builder.build()

    @pytest.mark.parametrize(
        "model_cls", [JaccardSetModel, AsymmetricWeightedModel]
    )
    def test_extension_models_detect_phases(self, model_cls):
        trace, specs = self._trace()
        config = DetectorConfig(cw_size=100, threshold=0.5)
        detector = build_extended_detector(
            config, model=model_cls(config.cw_size, config.effective_tw_size)
        )
        result = detector.run(trace)
        truth = np.zeros(len(trace), dtype=bool)
        for spec in specs:
            truth[spec.start : spec.end] = True
        score = score_states(result.states, truth)
        assert score.score > 0.85, model_cls.__name__

    def test_ewma_analyzer_detects_phases(self):
        trace, specs = self._trace()
        config = DetectorConfig(cw_size=100, trailing=TrailingPolicy.ADAPTIVE)
        detector = build_extended_detector(
            config, analyzer=EwmaAnalyzer(delta=0.1, alpha=0.3, enter_threshold=0.5)
        )
        result = detector.run(trace)
        assert len(result.detected_phases) >= 2


class TestHysteresisAnalyzer:
    def test_enter_high_leave_low(self):
        from repro.core.extensions import HysteresisAnalyzer

        analyzer = HysteresisAnalyzer(enter_threshold=0.7, exit_threshold=0.5)
        assert analyzer.process_value(0.65, T) is T      # below entry
        assert analyzer.process_value(0.72, T) is P      # enters
        assert analyzer.process_value(0.55, P) is P      # dip survives
        assert analyzer.process_value(0.45, P) is T      # below exit

    def test_validation(self):
        from repro.core.extensions import HysteresisAnalyzer

        with pytest.raises(ValueError):
            HysteresisAnalyzer(enter_threshold=0.4, exit_threshold=0.6)
        with pytest.raises(ValueError):
            HysteresisAnalyzer(enter_threshold=1.2)

    def test_rides_out_noise_dips(self):
        """Hysteresis keeps one phase where a single threshold fragments."""
        from repro.core.extensions import HysteresisAnalyzer
        from repro.core.analyzers import ThresholdAnalyzer
        from repro.core.detector import PhaseDetector
        from repro.profiles.synthetic import SyntheticTraceBuilder

        builder = SyntheticTraceBuilder(seed=43)
        builder.add_transition(200)
        builder.add_phase(3_000, body_size=10, noise_rate=0.08)
        builder.add_transition(200)
        trace, _ = builder.build()
        config = DetectorConfig(cw_size=60, threshold=0.8)

        plain = PhaseDetector(config).run(trace)
        hysteresis_detector = build_extended_detector(
            config, analyzer=HysteresisAnalyzer(enter_threshold=0.8, exit_threshold=0.55)
        )
        hysteretic = hysteresis_detector.run(trace)
        assert len(hysteretic.detected_phases) <= len(plain.detected_phases)
        assert len(hysteretic.detected_phases) >= 1
