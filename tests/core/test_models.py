"""Similarity model tests: paper examples and incremental maintenance."""

import pytest

from repro.core.config import AnchorPolicy, DetectorConfig, ModelKind, ResizePolicy
from repro.core.models import UnweightedSetModel, WeightedSetModel, build_model


def fill(model, trailing, current):
    """Load the TW with ``trailing`` and the CW with ``current``."""
    model.push(list(trailing) + list(current))
    return model


class TestUnweightedModel:
    def test_paper_example(self):
        # CW = {a, b}, TW = {a, c} -> 0.5 regardless of frequency.
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        fill(model, ["a1", "c1"], ["a1", "b1"])
        assert model.similarity() == pytest.approx(0.5)

    def test_frequency_ignored(self):
        model = UnweightedSetModel(cw_capacity=3, tw_capacity=3)
        fill(model, ["a", "a", "c"], ["a", "a", "b"])
        # distinct CW = {a, b}; shared = {a} -> 0.5
        assert model.similarity() == pytest.approx(0.5)

    def test_identical_windows(self):
        model = UnweightedSetModel(cw_capacity=4, tw_capacity=4)
        fill(model, [1, 2, 3, 4], [4, 3, 2, 1])
        assert model.similarity() == pytest.approx(1.0)

    def test_disjoint_windows(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        fill(model, [1, 2], [3, 4])
        assert model.similarity() == 0.0

    def test_incremental_matches_recompute_under_sliding(self):
        model = UnweightedSetModel(cw_capacity=5, tw_capacity=7)
        stream = [i % 9 for i in range(200)] + [i % 4 for i in range(100)]
        for element in stream:
            model.push([element])
            if model.filled:
                expected_distinct = len(model.cw_counts)
                expected_shared = sum(
                    1 for e in model.cw_counts if e in model.tw_counts
                )
                expected = expected_shared / expected_distinct
                assert model.similarity() == pytest.approx(expected)

    def test_empty_cw_similarity_zero(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        assert model.similarity() == 0.0


class TestWeightedModel:
    def test_paper_example(self):
        # CW {(a,5),(b,3),(c,2)}, TW {(a,25),(b,15),(c,10),(d,50)} -> 0.5.
        model = WeightedSetModel(cw_capacity=10, tw_capacity=100)
        trailing = ["a"] * 25 + ["b"] * 15 + ["c"] * 10 + ["d"] * 50
        current = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        fill(model, trailing, current)
        assert model.similarity() == pytest.approx(0.5)

    def test_identical_distributions(self):
        model = WeightedSetModel(cw_capacity=4, tw_capacity=8)
        fill(model, [1, 1, 2, 2, 1, 1, 2, 2], [1, 1, 2, 2])
        assert model.similarity() == pytest.approx(1.0)

    def test_disjoint(self):
        model = WeightedSetModel(cw_capacity=2, tw_capacity=2)
        fill(model, [1, 2], [3, 4])
        assert model.similarity() == 0.0

    def test_symmetry_of_min(self):
        # min() treats both windows the same after weight normalization.
        model = WeightedSetModel(cw_capacity=4, tw_capacity=4)
        fill(model, [1, 1, 1, 2], [1, 2, 2, 2])
        # weights: e1 cw=.25 tw=.75 -> .25; e2 cw=.75 tw=.25 -> .25
        assert model.similarity() == pytest.approx(0.5)


class TestWindowMechanics:
    def test_fill_order_tw_holds_older(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        model.push([10, 11, 12, 13])
        assert list(model._tw) == [10, 11]
        assert list(model._cw) == [12, 13]
        assert model.filled

    def test_not_filled_before_enough_elements(self):
        model = UnweightedSetModel(cw_capacity=3, tw_capacity=3)
        model.push([1, 2, 3, 4, 5])
        assert not model.filled
        model.push([6])
        assert model.filled

    def test_eviction_beyond_tw(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        model.push([1, 2, 3, 4, 5, 6])
        assert list(model._tw) == [3, 4]
        assert list(model._cw) == [5, 6]

    def test_clear_and_seed(self):
        model = UnweightedSetModel(cw_capacity=3, tw_capacity=3)
        model.push(list(range(10)))
        model.clear_and_seed([100, 101])
        assert not model.filled
        assert list(model._cw) == [100, 101]
        assert model.tw_length == 0
        assert model.cw_counts == {100: 1, 101: 1}

    def test_seed_clamped_to_capacity(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        model.clear_and_seed([1, 2, 3, 4])
        assert list(model._cw) == [3, 4]

    def test_tw_start_abs_tracks_positions(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=3)
        model.push(list(range(10)))
        assert model.consumed == 10
        assert model.tw_start_abs == 10 - 2 - 3

    def test_growth_mode(self):
        model = UnweightedSetModel(cw_capacity=2, tw_capacity=2)
        model.push([1, 2, 3, 4])
        model.growing = True
        model.push([5, 6, 7, 8])
        assert model.tw_length == 6  # grew instead of evicting


class TestAnchoring:
    def build(self, trailing, current, cw=3, tw=4):
        model = UnweightedSetModel(cw_capacity=cw, tw_capacity=tw)
        model.push(list(trailing) + list(current))
        return model

    def test_rn_after_rightmost_noisy(self):
        # TW = [n, a, n, b]; CW = [a, b, c]: noisy at 0 and 2 -> anchor 3.
        model = self.build(["n1", "a", "n2", "b"], ["a", "b", "c"])
        assert model.anchor_index(AnchorPolicy.RN) == 3

    def test_lnn_leftmost_non_noisy(self):
        model = self.build(["n1", "a", "n2", "b"], ["a", "b", "c"])
        assert model.anchor_index(AnchorPolicy.LNN) == 1

    def test_no_noise_anchors_at_zero(self):
        model = self.build(["a", "b", "a", "b"], ["a", "b", "c"])
        assert model.anchor_index(AnchorPolicy.RN) == 0
        assert model.anchor_index(AnchorPolicy.LNN) == 0

    def test_all_noise_anchors_at_end(self):
        model = self.build(["x", "y", "z", "w"], ["a", "b", "c"])
        assert model.anchor_index(AnchorPolicy.RN) == 4
        assert model.anchor_index(AnchorPolicy.LNN) == 4

    def test_slide_moves_cw_elements_into_tw(self):
        model = self.build(["n1", "n2", "a", "b"], ["a", "b", "c"])
        # anchor (RN) = 2; slide drops TW[:2], moves 2 from CW.
        anchor_abs = model.anchor_and_resize(
            AnchorPolicy.RN, ResizePolicy.SLIDE, adaptive=True
        )
        assert anchor_abs == 2
        assert list(model._tw) == ["a", "b", "a", "b"]
        assert list(model._cw) == ["c"]
        assert model.growing

    def test_move_shrinks_tw_only(self):
        model = self.build(["n1", "n2", "a", "b"], ["a", "b", "c"])
        model.anchor_and_resize(AnchorPolicy.RN, ResizePolicy.MOVE, adaptive=True)
        assert list(model._tw) == ["a", "b"]
        assert list(model._cw) == ["a", "b", "c"]

    def test_constant_policy_computes_anchor_without_resize(self):
        model = self.build(["n1", "n2", "a", "b"], ["a", "b", "c"])
        anchor_abs = model.anchor_and_resize(
            AnchorPolicy.RN, ResizePolicy.SLIDE, adaptive=False
        )
        assert anchor_abs == 2
        assert list(model._tw) == ["n1", "n2", "a", "b"]
        assert not model.growing

    def test_slide_keeps_at_least_one_cw_element(self):
        model = self.build(["x", "y", "z", "w"], ["a", "b", "c"])
        model.anchor_and_resize(AnchorPolicy.RN, ResizePolicy.SLIDE, adaptive=True)
        assert model.cw_length >= 1


class TestBuildModel:
    def test_dispatch(self):
        unweighted = build_model(DetectorConfig(cw_size=4, model=ModelKind.UNWEIGHTED))
        weighted = build_model(DetectorConfig(cw_size=4, model=ModelKind.WEIGHTED))
        assert isinstance(unweighted, UnweightedSetModel)
        assert isinstance(weighted, WeightedSetModel)
