"""Unified runtime tests: step/advance equivalence, StepOutcome, checkpoints.

The checkpoint contract is the strong one the docs promise: suspend a
runtime mid-trace, round-trip the checkpoint through JSON, restore, and
the continuation is *bit-identical* to never having stopped — same
per-element states, same phases, same observability event stream, and
the same end-of-run checkpoint.
"""

import json

import numpy as np
import pytest

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.models import UnweightedSetModel
from repro.core.runtime import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    DetectorRuntime,
    StepOutcome,
    validate_checkpoint,
)
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def trace():
    builder = SyntheticTraceBuilder(seed=37)
    builder.add_transition(180)
    first = builder.add_phase(1_100, body_size=9, noise_rate=0.02)
    builder.add_transition(90)
    builder.add_phase(700, body_size=22)
    builder.add_transition(120)
    builder.add_phase(900, pattern_id=first.pattern_id, noise_rate=0.01)
    builder.add_transition(60)
    return builder.build()[0]


def combo_config(model, analyzer, trailing=TrailingPolicy.ADAPTIVE,
                 resize=ResizePolicy.SLIDE, skip=5):
    return DetectorConfig(
        cw_size=60,
        skip_factor=skip,
        trailing=trailing,
        model=model,
        analyzer=analyzer,
        threshold=0.55,
        delta=0.08,
        anchor=AnchorPolicy.RN,
        resize=resize,
    )


ALL_COMBOS = [
    (model, analyzer)
    for model in (ModelKind.UNWEIGHTED, ModelKind.WEIGHTED)
    for analyzer in (AnalyzerKind.THRESHOLD, AnalyzerKind.AVERAGE)
]


def drive_steps(runtime, trace, start=0, stop=None):
    """Feed trace[start:stop] through step(); return per-element states."""
    elements = trace.array.tolist()
    stop = len(elements) if stop is None else stop
    skip = runtime.config.skip_factor
    states = []
    for offset in range(start, stop, skip):
        outcome = runtime.step(elements[offset : offset + skip])
        states.extend([outcome.state.is_phase()] * len(elements[offset : offset + skip]))
    return states


class TestStepOutcome:
    def test_similarity_none_while_filling(self, trace):
        runtime = DetectorRuntime(combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD))
        outcome = runtime.step(trace.array[:5].tolist())
        assert isinstance(outcome, StepOutcome)
        assert outcome.similarity is None
        assert not outcome.entered
        assert outcome.closed is None

    def test_similarity_matches_emitted_decision_value(self, trace):
        """The outcome carries the exact value the decision used."""
        sink = MemorySink()
        runtime = DetectorRuntime(
            combo_config(ModelKind.WEIGHTED, AnalyzerKind.AVERAGE), observer=sink
        )
        recorded = []
        elements = trace.array.tolist()
        for start in range(0, 2_000, 5):
            outcome = runtime.step(elements[start : start + 5])
            if outcome.similarity is not None:
                recorded.append(outcome.similarity)
        decided = [e["value"] for e in sink.events if e["ev"] == "decision"]
        assert recorded == decided

    def test_entered_and_closed_flags(self, trace):
        runtime = DetectorRuntime(combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD))
        entered = closed = 0
        elements = trace.array.tolist()
        for start in range(0, len(elements), 5):
            outcome = runtime.step(elements[start : start + 5])
            entered += outcome.entered
            closed += outcome.closed is not None
        phases = runtime.finish(len(elements))
        assert entered == len(phases)
        # The final phase (if any) is closed by finish(), not a step.
        assert closed in (len(phases), len(phases) - 1)

    def test_run_records_similarity_once_per_step(self, trace):
        """Regression: record_similarity must not recompute the model's
        similarity after the step (the old detector did, which is wrong
        after a phase-entry resize and costs a second full pass)."""

        calls = {"n": 0}

        class CountingModel(UnweightedSetModel):
            def similarity(self):
                calls["n"] += 1
                return super().similarity()

        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        runtime = DetectorRuntime(config, model=CountingModel(config.cw_size, config.effective_tw_size))
        result = runtime.run(trace, record_similarity=True)
        filled_steps = np.count_nonzero(~np.isnan(result.similarity_values)) // config.skip_factor
        assert calls["n"] == filled_steps

    def test_recorded_similarities_are_decision_values(self, trace):
        """After a phase-entry step the TW has been resized; the recorded
        value must still be the pre-resize one the analyzer saw."""
        sink = MemorySink()
        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        runtime = DetectorRuntime(config, observer=sink)
        result = runtime.run(trace, record_similarity=True)
        assert result.detected_phases  # the fixture trace has phases
        decided = [e["value"] for e in sink.events if e["ev"] == "decision"]
        recorded = result.similarity_values[~np.isnan(result.similarity_values)]
        per_step = recorded[:: config.skip_factor]
        assert list(per_step) == decided


class TestPathInterleaving:
    @pytest.mark.parametrize("model,analyzer", ALL_COMBOS)
    def test_step_then_advance_matches_pure_runs(self, trace, model, analyzer):
        config = combo_config(model, analyzer)
        skip = config.skip_factor
        total = len(trace)
        cut = (total // 2 // skip) * skip

        pure = DetectorRuntime(config).run(trace)

        mixed = DetectorRuntime(config)
        head_states = drive_steps(mixed, trace, 0, cut)
        elements = trace.array.tolist()
        tail = bytearray(total - cut)
        groups = [elements[s : s + skip] for s in range(cut, total, skip)]
        mixed.advance(groups, tail, 0)
        phases = mixed.finish(total)

        states = np.array(head_states + [b != 0 for b in tail], dtype=bool)
        assert np.array_equal(states, pure.states)
        assert phases == pure.detected_phases

    def test_generic_advance_used_for_custom_components(self, trace):
        """Non-standard components must route advance() through step()."""

        class TracingModel(UnweightedSetModel):
            pass

        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        custom = DetectorRuntime(config, model=TracingModel(config.cw_size, config.effective_tw_size))
        assert not custom.fused_capable()
        standard = DetectorRuntime(config)
        assert standard.fused_capable()
        assert np.array_equal(
            custom.run(trace).states, standard.run(trace).states
        )


def checkpoint_matrix_config(model, analyzer, resize):
    return combo_config(model, analyzer, trailing=TrailingPolicy.ADAPTIVE,
                        resize=resize)


class TestCheckpointRestore:
    @pytest.mark.parametrize("resize", [ResizePolicy.SLIDE, ResizePolicy.MOVE])
    @pytest.mark.parametrize("model,analyzer", ALL_COMBOS)
    def test_bit_identical_continuation(self, trace, model, analyzer, resize):
        """checkpoint -> JSON -> restore mid-trace == uninterrupted run:
        same states, phases, event stream, and final checkpoint."""
        config = checkpoint_matrix_config(model, analyzer, resize)
        skip = config.skip_factor
        total = len(trace)
        # Cut inside the second phase so the checkpoint carries an open
        # phase, live analyzer statistics, and a resized TW.
        cut = (1_500 // skip) * skip

        full_sink = MemorySink()
        full = DetectorRuntime(config, observer=full_sink)
        full_states = drive_steps(full, trace)
        full_phases = full.finish(total)
        full_end = full.checkpoint()

        head_sink = MemorySink()
        head = DetectorRuntime(config, observer=head_sink)
        head_states = drive_steps(head, trace, 0, cut)
        blob = json.dumps(head.checkpoint())

        tail_sink = MemorySink()
        resumed = DetectorRuntime.restore(json.loads(blob), observer=tail_sink)
        assert resumed.consumed == cut
        tail_states = drive_steps(resumed, trace, cut)
        resumed_phases = resumed.finish(total)

        assert head_states + tail_states == full_states
        assert resumed_phases == full_phases
        assert head_sink.events + tail_sink.events == full_sink.events
        assert resumed.checkpoint() == full_end

    def test_checkpoint_equals_checkpoint_of_uninterrupted(self, trace):
        config = checkpoint_matrix_config(
            ModelKind.UNWEIGHTED, AnalyzerKind.AVERAGE, ResizePolicy.SLIDE
        )
        cut = 1_000
        a = DetectorRuntime(config)
        drive_steps(a, trace, 0, cut)
        b = DetectorRuntime.restore(a.checkpoint())
        assert b.checkpoint() == a.checkpoint()

    def test_restore_continues_on_fused_path(self, trace):
        """A restored runtime may continue via advance() too."""
        config = checkpoint_matrix_config(
            ModelKind.WEIGHTED, AnalyzerKind.THRESHOLD, ResizePolicy.MOVE
        )
        skip = config.skip_factor
        total = len(trace)
        cut = (1_500 // skip) * skip

        full = DetectorRuntime(config).run(trace)

        head = DetectorRuntime(config)
        drive_steps(head, trace, 0, cut)
        resumed = DetectorRuntime.restore(head.checkpoint())
        elements = trace.array.tolist()
        tail = bytearray(total - cut)
        groups = [elements[s : s + skip] for s in range(cut, total, skip)]
        resumed.advance(groups, tail, 0)
        phases = resumed.finish(total)
        assert phases == full.detected_phases
        assert np.array_equal(
            np.frombuffer(bytes(tail), dtype=np.uint8).astype(bool),
            full.states[cut:],
        )

    def test_json_round_trip_is_exact(self, trace):
        config = checkpoint_matrix_config(
            ModelKind.WEIGHTED, AnalyzerKind.AVERAGE, ResizePolicy.SLIDE
        )
        runtime = DetectorRuntime(config)
        drive_steps(runtime, trace, 0, 2_000)
        data = runtime.checkpoint()
        assert json.loads(json.dumps(data)) == data


class TestCheckpointValidation:
    def _checkpoint(self):
        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        runtime = DetectorRuntime(config)
        runtime.step([1, 2, 3, 4, 5])
        return runtime.checkpoint()

    def test_envelope_fields(self):
        data = self._checkpoint()
        assert data["format"] == CHECKPOINT_FORMAT
        assert data["version"] == CHECKPOINT_VERSION
        validate_checkpoint(data)  # must not raise

    def test_unknown_version_rejected(self):
        data = self._checkpoint()
        data["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            DetectorRuntime.restore(data)

    def test_wrong_format_rejected(self):
        data = self._checkpoint()
        data["format"] = "something-else"
        with pytest.raises(CheckpointError, match="format"):
            validate_checkpoint(data)

    def test_missing_fields_rejected(self):
        data = self._checkpoint()
        del data["cw"], data["stats"]
        with pytest.raises(CheckpointError, match="missing"):
            validate_checkpoint(data)

    def test_non_dict_rejected(self):
        with pytest.raises(CheckpointError):
            validate_checkpoint([1, 2, 3])

    def test_custom_components_cannot_checkpoint(self):
        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)

        class OtherModel(UnweightedSetModel):
            pass

        runtime = DetectorRuntime(config, model=OtherModel(config.cw_size, config.effective_tw_size))
        with pytest.raises(CheckpointError, match="standard"):
            runtime.checkpoint()


class TestObserverPlumbing:
    def test_observer_setter_reaches_model_and_tracker(self):
        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        runtime = DetectorRuntime(config)
        sink = MemorySink()
        runtime.observer = sink
        assert runtime.model.observer is sink
        assert runtime.tracker.observer is sink

    def test_event_stream_has_all_types(self, trace):
        sink = MemorySink()
        config = combo_config(ModelKind.UNWEIGHTED, AnalyzerKind.THRESHOLD)
        DetectorRuntime(config, observer=sink).run(trace)
        kinds = {event["ev"] for event in sink.events}
        assert {"run_begin", "similarity", "decision", "phase_enter",
                "tw_resize", "phase_exit", "window_flush", "run_end"} <= kinds
