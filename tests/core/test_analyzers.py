"""Analyzer policy tests."""

import pytest

from repro.core.analyzers import (
    AverageAnalyzer,
    PhaseStats,
    ThresholdAnalyzer,
    build_analyzer,
)
from repro.core.config import AnalyzerKind, DetectorConfig
from repro.core.state import PhaseState

P, T = PhaseState.PHASE, PhaseState.TRANSITION


class TestThresholdAnalyzer:
    def test_at_threshold_is_phase(self):
        analyzer = ThresholdAnalyzer(0.6)
        assert analyzer.process_value(0.6, T) is P
        assert analyzer.process_value(0.59, T) is T

    def test_state_independent(self):
        analyzer = ThresholdAnalyzer(0.5)
        assert analyzer.process_value(0.7, T) is P
        assert analyzer.process_value(0.7, P) is P

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ThresholdAnalyzer(1.2)

    def test_confidence_above_threshold(self):
        analyzer = ThresholdAnalyzer(0.5)
        analyzer.reset_stats(0.8)
        analyzer.update_stats(0.9)
        assert analyzer.confidence == pytest.approx(0.35)


class TestAverageAnalyzer:
    def test_enter_uses_fixed_threshold(self):
        analyzer = AverageAnalyzer(delta=0.05, enter_threshold=0.5)
        assert analyzer.process_value(0.49, T) is T
        assert analyzer.process_value(0.51, T) is P

    def test_in_phase_adapts_to_running_average(self):
        analyzer = AverageAnalyzer(delta=0.02, enter_threshold=0.5)
        analyzer.reset_stats(0.88)
        # Running average 0.88: values >= 0.86 stay in phase.
        assert analyzer.process_value(0.86, P) is P
        assert analyzer.process_value(0.859, P) is T

    def test_average_updates_with_phase(self):
        analyzer = AverageAnalyzer(delta=0.02)
        analyzer.reset_stats(0.9)
        analyzer.update_stats(0.7)  # mean now 0.8
        assert analyzer.process_value(0.79, P) is P
        assert analyzer.process_value(0.77, P) is T

    def test_clear_resets_to_entry_mode(self):
        analyzer = AverageAnalyzer(delta=0.5, enter_threshold=0.9)
        analyzer.reset_stats(0.95)
        analyzer.clear()
        # Without stats the entry threshold applies even if state is P.
        assert analyzer.process_value(0.6, P) is T

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            AverageAnalyzer(delta=-0.1)
        with pytest.raises(ValueError):
            AverageAnalyzer(delta=0.1, enter_threshold=1.5)


class TestPhaseStats:
    def test_running_statistics(self):
        stats = PhaseStats()
        for value in (0.5, 0.7, 0.9):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.7)
        assert stats.minimum == 0.5
        assert stats.maximum == 0.9

    def test_reset(self):
        stats = PhaseStats()
        stats.add(0.4)
        stats.reset()
        assert stats.count == 0
        assert stats.mean == 0.0


class TestBuildAnalyzer:
    def test_dispatch(self):
        threshold = build_analyzer(
            DetectorConfig(cw_size=4, analyzer=AnalyzerKind.THRESHOLD, threshold=0.7)
        )
        average = build_analyzer(
            DetectorConfig(cw_size=4, analyzer=AnalyzerKind.AVERAGE, delta=0.1)
        )
        assert isinstance(threshold, ThresholdAnalyzer)
        assert threshold.threshold == 0.7
        assert isinstance(average, AverageAnalyzer)
        assert average.delta == 0.1
