"""DetectorBank tests: lockstep members == solo runs, events and all."""

import numpy as np
import pytest

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.bank import DetectorBank
from repro.core.engine import run_detector
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def trace():
    builder = SyntheticTraceBuilder(seed=53)
    builder.add_transition(160)
    builder.add_phase(1_200, body_size=8, noise_rate=0.02)
    builder.add_transition(110)
    builder.add_phase(800, body_size=18)
    builder.add_transition(90)
    return builder.build()[0]


def grid_configs():
    """A mixed grid: models x analyzers x trailing, across 3 skip lanes."""
    configs = []
    skips = (1, 5, 12)
    index = 0
    for model in ModelKind:
        for analyzer in AnalyzerKind:
            for trailing in TrailingPolicy:
                configs.append(
                    DetectorConfig(
                        cw_size=50,
                        skip_factor=skips[index % len(skips)],
                        trailing=trailing,
                        model=model,
                        analyzer=analyzer,
                        threshold=0.55,
                        delta=0.07,
                        anchor=AnchorPolicy.RN,
                        resize=ResizePolicy.SLIDE,
                    )
                )
                index += 1
    return configs


class TestEquivalence:
    def test_mixed_grid_matches_solo_runs(self, trace):
        configs = grid_configs()
        solo = [run_detector(trace, config) for config in configs]
        banked = DetectorBank(configs).run(trace)
        assert len(banked) == len(solo)
        for config, a, b in zip(configs, solo, banked):
            assert np.array_equal(a.states, b.states), config.describe()
            assert a.detected_phases == b.detected_phases, config.describe()
            assert b.config == config

    def test_duplicate_configs_share_a_lane(self, trace):
        config = DetectorConfig(cw_size=40, skip_factor=7, threshold=0.6)
        banked = DetectorBank([config, config, config]).run(trace)
        solo = run_detector(trace, config)
        for result in banked:
            assert np.array_equal(result.states, solo.states)
            assert result.detected_phases == solo.detected_phases

    def test_event_streams_match_solo_runs(self, trace):
        configs = grid_configs()[:4]
        solo_sinks = [MemorySink() for _ in configs]
        for config, sink in zip(configs, solo_sinks):
            run_detector(trace, config, observer=sink)
        bank_sinks = [MemorySink() for _ in configs]
        DetectorBank(configs, observers=bank_sinks).run(trace)
        for solo, banked in zip(solo_sinks, bank_sinks):
            assert banked.events == solo.events

    def test_partial_observers_allowed(self, trace):
        configs = grid_configs()[:3]
        sink = MemorySink()
        DetectorBank(configs, observers=[None, sink, None]).run(trace)
        assert sink.events[0]["ev"] == "run_begin"
        assert sink.events[-1]["ev"] == "run_end"


class TestConstruction:
    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DetectorBank([])

    def test_observer_count_mismatch_rejected(self):
        config = DetectorConfig(cw_size=40, threshold=0.6)
        with pytest.raises(ValueError, match="observers"):
            DetectorBank([config, config], observers=[MemorySink()])

    def test_len_and_configs(self):
        configs = grid_configs()
        bank = DetectorBank(configs)
        assert len(bank) == len(configs)
        assert bank.configs == configs
