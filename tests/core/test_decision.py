"""Decision-protocol conformance for every registered detector family.

The contract under test is :class:`repro.core.decision.DecisionEngine`:
whatever the family, stepping over a trace must produce consistent
decisions (enter/exit/continue transitions that match the state
stream), schema-valid observability events, a well-formed
:class:`DetectionResult`, and a version-2 checkpoint that restores to a
bit-identical continuation.  The windowed grid keeps its version-1
schema; cross-version handling is pinned here too.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.comparators import engine_family, family_names
from repro.core.config import DetectorConfig
from repro.core.decision import (
    CHECKPOINT_VERSION,
    CHECKPOINT_VERSION_FAMILY,
    CheckpointError,
    DecisionEngine,
    PhaseDecision,
    build_engine,
    restore_engine,
    validate_checkpoint,
)
from repro.core.runtime import DetectorRuntime
from repro.core.state import PhaseState
from repro.obs.bus import MemorySink
from repro.obs.events import validate_event
from repro.profiles.trace import BranchTrace


def phased_trace(total=6000, seed=5):
    """Three working-set regimes with Zipf-ish frequencies."""
    parts = []
    for offset, lo in enumerate((0, 400, 150)):
        rng = np.random.default_rng(seed + offset)
        vocab = np.arange(lo, lo + 40, dtype=np.int64)
        weights = 1.0 / np.arange(1, 41) ** 1.2
        weights /= weights.sum()
        parts.append(rng.choice(vocab, size=total // 3, p=weights))
    return BranchTrace(np.concatenate(parts).astype(np.int64), name="phased")


def family_config(name):
    """A small runnable config for ``name`` (fast windows for tests)."""
    return replace(engine_family(name).default_config(), cw_size=120)


ALL_FAMILIES = family_names()
#: Families whose engines write version-2 checkpoints (dhodapkar_smith
#: normalizes to a windowed runtime, so it stays on version 1).
V2_FAMILIES = ["focus", "newma", "das_pearson", "lu_dynamo"]


def test_registry_names_and_miss():
    assert ALL_FAMILIES[0] == "windowed"
    assert set(V2_FAMILIES) <= set(ALL_FAMILIES)
    with pytest.raises(ValueError, match="unknown detector family"):
        engine_family("bogus")
    for name in ALL_FAMILIES:
        spec = engine_family(name)
        assert spec.name == name
        assert spec.summary and spec.statistic


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_build_engine_dispatches(name):
    engine = build_engine(family_config(name))
    assert isinstance(engine, DecisionEngine)
    if name in ("windowed", "dhodapkar_smith"):
        assert isinstance(engine, DetectorRuntime)
    else:
        assert engine.family == name


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_decision_protocol_conformance(name):
    """Step decisions, state stream, and phases must stay consistent."""
    trace = phased_trace()
    engine = build_engine(family_config(name))
    skip = engine.config.skip_factor
    elements = trace.array.tolist()
    in_phase = False
    enters = exits = 0
    for start in range(0, len(elements), skip):
        group = elements[start : start + skip]
        decision = engine.step(group)
        assert isinstance(decision, PhaseDecision)
        assert decision.state in (PhaseState.PHASE, PhaseState.TRANSITION)
        assert decision.kind in ("enter", "exit", "continue")
        if decision.entered:
            assert decision.state.is_phase()
            assert not in_phase
            enters += 1
        if decision.closed is not None:
            assert in_phase
            assert decision.closed.end <= engine.consumed
            exits += 1
        in_phase = decision.state.is_phase()
    phases = engine.finish(len(elements))
    assert engine.consumed == len(elements)
    # Every enter eventually closes (finish closes the last open one).
    assert len(phases) == enters
    assert exits in (enters, enters - 1)
    for phase in phases:
        assert 0 <= phase.corrected_start <= phase.detected_start < phase.end


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_run_result_shape_and_events(name):
    trace = phased_trace()
    sink = MemorySink()
    engine = build_engine(family_config(name), observer=sink)
    result = engine.run(trace)
    assert result.states.dtype == bool
    assert result.states.size == len(trace)
    for event in sink.events:
        validate_event(event)
    kinds = [event["ev"] for event in sink.events]
    assert kinds[0] == "run_begin"
    assert kinds[-1] == "run_end"
    assert kinds.count("phase_enter") == len(result.detected_phases)
    assert kinds.count("phase_exit") == len(result.detected_phases)
    # Engines past warm-up must expose their statistic stream.
    assert "similarity" in kinds and "decision" in kinds


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_advance_flat_matches_groups(name):
    """The bank's flat skip-1 lane is bit-identical to grouped advance."""
    elements = phased_trace().array.tolist()
    config = replace(family_config(name), skip_factor=1)
    if name == "dhodapkar_smith":
        # Its builder forces skip = cw; the flat lane never applies.
        pytest.skip("dhodapkar_smith normalizes to skip = cw")
    grouped = build_engine(config)
    flat = build_engine(config)
    states_grouped = bytearray(len(elements))
    states_flat = bytearray(len(elements))
    grouped.advance([[element] for element in elements], states_grouped, 0)
    flat.advance_flat(elements, states_flat, 0)
    assert bytes(states_grouped) == bytes(states_flat)
    assert grouped.finish(len(elements)) == flat.finish(len(elements))


@pytest.mark.parametrize("name", V2_FAMILIES)
def test_family_checkpoint_roundtrip_bit_identical(name):
    elements = phased_trace().array.tolist()
    config = family_config(name)
    straight = build_engine(config)
    states_a = bytearray(len(elements))
    straight.advance_flat(elements, states_a, 0)
    phases_a = straight.finish(len(elements))

    parked = build_engine(config)
    states_b = bytearray(len(elements))
    base = 0
    while base < len(elements):
        stop = min(base + 500, len(elements))
        parked.advance_flat(elements[base:stop], states_b, base)
        blob = json.dumps(parked.checkpoint(), separators=(",", ":"))
        data = json.loads(blob)
        assert data["version"] == CHECKPOINT_VERSION_FAMILY
        assert data["family"] == name
        validate_checkpoint(data)
        parked = restore_engine(data)
        # The round-trip itself must be a fixed point, byte for byte.
        assert (
            json.dumps(parked.checkpoint(), separators=(",", ":")) == blob
        )
        base = stop
    phases_b = parked.finish(len(elements))
    assert bytes(states_a) == bytes(states_b)
    assert phases_a == phases_b


@pytest.mark.parametrize("name", V2_FAMILIES)
def test_family_event_stream_unbroken_by_park(name):
    """Parked/rehydrated engines emit the uninterrupted event stream."""
    elements = phased_trace().array.tolist()
    config = family_config(name)
    sink_a = MemorySink()
    straight = build_engine(config, observer=sink_a)
    straight.advance_flat(elements, bytearray(len(elements)), 0)
    straight.finish(len(elements))

    sink_b = MemorySink()
    parked = build_engine(config, observer=sink_b)
    states = bytearray(len(elements))
    base = 0
    while base < len(elements):
        stop = min(base + 777, len(elements))
        parked.advance_flat(elements[base:stop], states, base)
        parked = restore_engine(
            json.loads(json.dumps(parked.checkpoint())), observer=sink_b
        )
        base = stop
    parked.finish(len(elements))
    assert sink_a.events == sink_b.events


def test_restore_rejects_wrong_family():
    config = family_config("focus")
    engine = build_engine(config)
    engine.advance_flat([1, 2, 3, 4], bytearray(4), 0)
    data = engine.checkpoint()
    with pytest.raises(CheckpointError, match="family"):
        engine_family("newma").restore(data)


def test_windowed_runtime_rejects_family_checkpoints():
    engine = build_engine(family_config("newma"))
    engine.advance_flat([1, 2, 3, 4], bytearray(4), 0)
    data = engine.checkpoint()
    with pytest.raises(CheckpointError, match="windowed checkpoints"):
        DetectorRuntime.restore(data)


def test_restore_engine_handles_both_versions():
    windowed = build_engine(DetectorConfig(cw_size=8))
    windowed.advance_flat(list(range(40)), bytearray(40), 0)
    v1 = windowed.checkpoint()
    assert v1["version"] == CHECKPOINT_VERSION
    assert isinstance(restore_engine(v1), DetectorRuntime)

    focus = build_engine(family_config("focus"))
    focus.advance_flat(list(range(40)), bytearray(40), 0)
    v2 = focus.checkpoint()
    restored = restore_engine(v2)
    assert restored.family == "focus"


def test_validate_checkpoint_rejects_unknown_and_untagged():
    with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
        validate_checkpoint(
            {"format": "repro-detector-checkpoint", "version": 3}
        )
    engine = build_engine(family_config("focus"))
    data = engine.checkpoint()
    del data["family"]
    with pytest.raises(CheckpointError, match="family tag"):
        validate_checkpoint(data)


def test_build_engine_rejects_custom_components_off_grid():
    from repro.core.models import UnweightedSetModel

    config = family_config("focus")
    with pytest.raises(ValueError, match="windowed family"):
        build_engine(
            config, model=UnweightedSetModel(config.cw_size, config.cw_size)
        )


def test_dhodapkar_smith_normalizes_to_fixed_interval():
    config = replace(family_config("dhodapkar_smith"), cw_size=100)
    engine = build_engine(config)
    assert isinstance(engine, DetectorRuntime)
    assert engine.config.is_windowed
    assert engine.config.is_fixed_interval
    assert engine.config.skip_factor == 100
