"""Reference detector tests on synthetic traces with known phases."""

import numpy as np
import pytest

from repro.core import (
    AnalyzerKind,
    DetectorConfig,
    ModelKind,
    PhaseDetector,
    PhaseState,
    TrailingPolicy,
    detect,
)
from repro.profiles.synthetic import SyntheticTraceBuilder, make_noise_trace
from repro.scoring import phases_from_states, score_states


def config(**kwargs):
    defaults = dict(cw_size=100, threshold=0.6)
    defaults.update(kwargs)
    return DetectorConfig(**defaults)


class TestBasicDetection:
    def test_finds_all_phases(self, phased_truth):
        trace, specs, truth = phased_truth
        result = detect(trace, config())
        assert len(result.detected_phases) == len(specs)
        score = score_states(result.states, truth)
        assert score.sensitivity == 1.0
        assert score.false_positives == 0.0
        assert score.score > 0.9

    def test_detection_is_late_but_within_phase(self, phased_truth):
        trace, specs, truth = phased_truth
        result = detect(trace, config())
        for phase, spec in zip(result.detected_phases, specs):
            assert spec.start <= phase.detected_start < spec.end
            assert phase.corrected_start <= phase.detected_start

    def test_anchor_correction_recovers_start(self, phased_truth):
        trace, specs, truth = phased_truth
        result = detect(trace, config(trailing=TrailingPolicy.ADAPTIVE))
        for phase, spec in zip(result.detected_phases, specs):
            assert abs(phase.corrected_start - spec.start) <= 5

    def test_pure_noise_detects_nothing(self):
        trace = make_noise_trace(length=3_000, seed=3)
        result = detect(trace, config())
        assert len(result.detected_phases) == 0
        assert not result.states.any()

    def test_pure_periodic_is_one_phase(self):
        builder = SyntheticTraceBuilder(seed=4)
        builder.add_phase(5_000, body_size=12)
        trace, _ = builder.build()
        result = detect(trace, config())
        assert len(result.detected_phases) == 1
        phase = result.detected_phases[0]
        assert phase.end == len(trace)

    def test_output_one_state_per_element(self, phased_truth):
        trace, _, _ = phased_truth
        result = detect(trace, config(skip_factor=7))
        assert result.states.shape == (len(trace),)


class TestFrameworkLoop:
    def test_initial_state_transition(self):
        detector = PhaseDetector(config())
        assert detector.state is PhaseState.TRANSITION

    def test_outputs_t_until_windows_fill(self, phased_truth):
        trace, _, _ = phased_truth
        detector = PhaseDetector(config(cw_size=50))
        for index in range(99):
            state = detector.process_profile([trace[index]])
            assert state is PhaseState.TRANSITION

    def test_windows_cleared_at_phase_end(self):
        builder = SyntheticTraceBuilder(seed=5)
        builder.add_phase(800, body_size=6)
        builder.add_transition(400)
        trace, _ = builder.build()
        cfg = config(cw_size=50)
        detector = PhaseDetector(cfg)
        result = detector.run(trace)
        assert len(result.detected_phases) == 1
        end = result.detected_phases[0].end
        # After the phase ends the windows must refill before any P:
        # at least cw+tw elements of T follow the phase end.
        refill = result.states[end : end + 100]
        assert not refill.any()

    def test_finish_closes_open_phase(self):
        builder = SyntheticTraceBuilder(seed=6)
        builder.add_phase(600, body_size=5)
        trace, _ = builder.build()
        detector = PhaseDetector(config(cw_size=40))
        detector.run(trace)
        assert detector.state is PhaseState.TRANSITION  # closed by finish()

    def test_record_similarity(self, phased_truth):
        trace, _, _ = phased_truth
        result = PhaseDetector(config()).run(trace, record_similarity=True)
        values = result.similarity_values
        assert values is not None
        assert np.isnan(values[:199]).all()  # windows not yet full
        finite = values[~np.isnan(values)]
        assert ((0.0 <= finite) & (finite <= 1.0)).all()


class TestSkipFactor:
    @pytest.mark.parametrize("skip", [1, 3, 10, 100])
    def test_phase_found_at_any_skip(self, skip):
        builder = SyntheticTraceBuilder(seed=8)
        builder.add_transition(300)
        builder.add_phase(3_000, body_size=10)
        builder.add_transition(300)
        trace, specs = builder.build()
        result = detect(trace, config(cw_size=100, skip_factor=skip))
        assert len(result.detected_phases) >= 1
        longest = max(result.detected_phases, key=lambda p: p.length)
        spec = specs[0]
        assert longest.detected_start < spec.end
        assert longest.end > spec.start + spec.length // 2

    def test_larger_skip_coarser_states(self):
        builder = SyntheticTraceBuilder(seed=9)
        builder.add_transition(200)
        builder.add_phase(2_000, body_size=10)
        trace, specs = builder.build()
        fine = detect(trace, config(cw_size=100, skip_factor=1))
        coarse = detect(trace, config(cw_size=100, skip_factor=100))
        spec = specs[0]
        fine_start = fine.detected_phases[0].detected_start
        coarse_start = coarse.detected_phases[0].detected_start
        # Both late; the coarse detector can only react on step boundaries.
        assert fine_start >= spec.start
        assert coarse_start % 100 == 0


class TestModelsAndAnalyzers:
    @pytest.mark.parametrize("model", [ModelKind.UNWEIGHTED, ModelKind.WEIGHTED])
    @pytest.mark.parametrize(
        "trailing", [TrailingPolicy.CONSTANT, TrailingPolicy.ADAPTIVE]
    )
    def test_all_combinations_detect(self, model, trailing, phased_truth):
        trace, specs, truth = phased_truth
        result = detect(trace, config(model=model, trailing=trailing))
        score = score_states(result.states, truth)
        assert score.score > 0.85

    def test_average_analyzer_on_noisy_phase(self, noisy_phased_trace):
        trace, specs = noisy_phased_trace
        cfg = config(
            analyzer=AnalyzerKind.AVERAGE,
            delta=0.2,
            enter_threshold=0.5,
            cw_size=60,
        )
        result = detect(trace, cfg)
        truth = np.zeros(len(trace), dtype=bool)
        for spec in specs:
            truth[spec.start : spec.end] = True
        score = score_states(result.states, truth)
        assert score.correlation > 0.7


class TestConfidence:
    def test_clean_phase_high_confidence(self):
        builder = SyntheticTraceBuilder(seed=12)
        builder.add_transition(200)
        builder.add_phase(2_000, body_size=10)
        builder.add_transition(200)
        trace, _ = builder.build()
        result = detect(trace, config())
        (phase,) = result.detected_phases
        assert phase.mean_similarity > 0.9
        assert phase.confidence == phase.mean_similarity

    def test_noisy_phase_lower_confidence(self):
        clean_builder = SyntheticTraceBuilder(seed=13)
        clean_builder.add_transition(200)
        clean_builder.add_phase(2_000, body_size=10)
        clean, _ = clean_builder.build()
        noisy_builder = SyntheticTraceBuilder(seed=13)
        noisy_builder.add_transition(200)
        noisy_builder.add_phase(2_000, body_size=10, noise_rate=0.15)
        noisy, _ = noisy_builder.build()
        cfg = config(threshold=0.4)
        clean_conf = max(p.mean_similarity for p in detect(clean, cfg).detected_phases)
        noisy_conf = max(p.mean_similarity for p in detect(noisy, cfg).detected_phases)
        assert clean_conf > noisy_conf


class TestStreamingEquivalence:
    """Feeding the detector in arbitrary chunk sizes == one-shot run()."""

    @pytest.mark.parametrize("chunk", [1, 13, 500])
    def test_chunked_process_profile_matches_run(self, chunk, phased_truth):
        trace, _, _ = phased_truth
        cfg = config(cw_size=80, skip_factor=1)
        one_shot = PhaseDetector(cfg).run(trace)

        streamed = PhaseDetector(cfg)
        states = np.zeros(len(trace), dtype=bool)
        data = trace.array.tolist()
        position = 0
        # Streaming client: buffer arbitrary-size chunks, hand the
        # detector exactly skip_factor elements per call.
        buffer = []
        for start in range(0, len(data), chunk):
            buffer.extend(data[start : start + chunk])
            while len(buffer) >= cfg.skip_factor:
                group, buffer = buffer[: cfg.skip_factor], buffer[cfg.skip_factor :]
                state = streamed.process_profile(group)
                if state.is_phase():
                    states[position : position + len(group)] = True
                position += len(group)
        if buffer:
            state = streamed.process_profile(buffer)
            if state.is_phase():
                states[position:] = True
        phases = streamed.finish(len(trace))
        assert np.array_equal(states, one_shot.states)
        assert phases == one_shot.detected_phases
