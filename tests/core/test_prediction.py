"""Phase-prediction tests."""

import pytest

from repro.core.prediction import (
    LastPhasePredictor,
    MarkovPhasePredictor,
    PredictionOutcome,
    evaluate_predictor,
)


class TestLastPhasePredictor:
    def test_no_prediction_before_data(self):
        assert LastPhasePredictor().predict() is None

    def test_predicts_last_seen(self):
        predictor = LastPhasePredictor()
        predictor.observe(3)
        assert predictor.predict() == 3
        predictor.observe(5)
        assert predictor.predict() == 5

    def test_perfect_on_constant_sequence(self):
        outcome = evaluate_predictor(LastPhasePredictor(), [1] * 20)
        assert outcome.accuracy == 1.0
        assert outcome.coverage == pytest.approx(19 / 20)

    def test_fails_on_alternation(self):
        outcome = evaluate_predictor(LastPhasePredictor(), [0, 1] * 10)
        assert outcome.accuracy == 0.0


class TestMarkovPhasePredictor:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            MarkovPhasePredictor(order=0)

    def test_learns_alternation(self):
        outcome = evaluate_predictor(MarkovPhasePredictor(order=1), [0, 1] * 20)
        # After seeing 0->1 and 1->0 once, every prediction is right.
        assert outcome.accuracy > 0.9

    def test_order2_disambiguates(self):
        # Sequence: 0 1 2, 0 1 3, repeated — after "0 1" the successor
        # alternates, so order-1 is 50/50 while order-2 keyed on the
        # preceding element of each block stays ambiguous too; use a
        # pattern order-2 *can* learn: successor of (a, b) is unique.
        pattern = [0, 1, 2, 1, 0, 3]  # (0,1)->2, (1,2)->1, (2,1)->0, ...
        sequence = pattern * 15
        order1 = evaluate_predictor(MarkovPhasePredictor(order=1), sequence)
        order2 = evaluate_predictor(MarkovPhasePredictor(order=2), sequence)
        assert order2.accuracy > order1.accuracy
        assert order2.accuracy > 0.9

    def test_falls_back_to_shorter_history(self):
        predictor = MarkovPhasePredictor(order=3)
        for phase_id in (1, 2, 1, 2):
            predictor.observe(phase_id)
        # History (1, 2) unseen at length 3; falls back and predicts 1.
        assert predictor.predict() == 1

    def test_no_prediction_cold(self):
        assert MarkovPhasePredictor(order=2).predict() is None


class TestEvaluate:
    def test_empty_sequence(self):
        outcome = evaluate_predictor(LastPhasePredictor(), [])
        assert outcome.accuracy == 0.0
        assert outcome.coverage == 0.0

    def test_outcome_fields(self):
        outcome = evaluate_predictor(LastPhasePredictor(), [7, 7, 8])
        assert outcome == PredictionOutcome(predictions=2, correct=1, total_phases=3)

    def test_on_detected_recurrence_ids(self):
        """End-to-end: detect recurring phases, then predict their order."""
        from repro.core.config import DetectorConfig, TrailingPolicy
        from repro.core.recurrence import RecurringPhaseDetector
        from repro.profiles.synthetic import SyntheticTraceBuilder

        builder = SyntheticTraceBuilder(seed=61)
        first = builder.add_phase(900, body_size=8)
        builder.add_transition(120)
        second = builder.add_phase(900, body_size=16)
        builder.add_transition(120)
        for _ in range(5):  # strict alternation continues
            builder.add_phase(900, pattern_id=first.pattern_id)
            builder.add_transition(120)
            builder.add_phase(900, pattern_id=second.pattern_id)
            builder.add_transition(120)
        trace, _ = builder.build()
        config = DetectorConfig(
            cw_size=60, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )
        result = RecurringPhaseDetector(config).run(trace)
        ids = [p.phase_id for p in result.phases]
        assert len(set(ids)) == 2
        outcome = evaluate_predictor(MarkovPhasePredictor(order=1), ids)
        assert outcome.accuracy > 0.8
