"""The optimized engine must match the reference detector bit-for-bit."""

import itertools

import numpy as np
import pytest

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    PhaseDetector,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.engine import run_detector
from repro.profiles.synthetic import SyntheticTraceBuilder


def gnarly_trace(seed=11):
    builder = SyntheticTraceBuilder(seed=seed)
    builder.add_transition(150)
    first = builder.add_phase(900, body_size=7, noise_rate=0.03)
    builder.add_transition(60)
    builder.add_phase(400, body_size=25)
    builder.add_transition(180)
    builder.add_phase(1_400, pattern_id=first.pattern_id, noise_rate=0.01)
    builder.add_transition(40)
    return builder.build()[0]


def assert_equivalent(trace, config):
    reference = PhaseDetector(config).run(trace)
    engine = run_detector(trace, config)
    assert np.array_equal(reference.states, engine.states), config.describe()
    assert reference.detected_phases == engine.detected_phases, config.describe()


TRACE = gnarly_trace()


@pytest.mark.parametrize("model", [ModelKind.UNWEIGHTED, ModelKind.WEIGHTED])
@pytest.mark.parametrize("trailing", [TrailingPolicy.CONSTANT, TrailingPolicy.ADAPTIVE])
@pytest.mark.parametrize("skip", [1, 7, 40])
def test_policy_model_skip_grid(model, trailing, skip):
    config = DetectorConfig(
        cw_size=40,
        skip_factor=skip,
        trailing=trailing,
        model=model,
        threshold=0.6,
    )
    assert_equivalent(TRACE, config)


@pytest.mark.parametrize("anchor", [AnchorPolicy.RN, AnchorPolicy.LNN])
@pytest.mark.parametrize("resize", [ResizePolicy.SLIDE, ResizePolicy.MOVE])
def test_anchor_resize_grid(anchor, resize):
    config = DetectorConfig(
        cw_size=60,
        trailing=TrailingPolicy.ADAPTIVE,
        anchor=anchor,
        resize=resize,
        threshold=0.55,
    )
    assert_equivalent(TRACE, config)


@pytest.mark.parametrize("analyzer,value", [
    (AnalyzerKind.THRESHOLD, 0.5),
    (AnalyzerKind.THRESHOLD, 0.8),
    (AnalyzerKind.AVERAGE, 0.01),
    (AnalyzerKind.AVERAGE, 0.3),
])
def test_analyzer_grid(analyzer, value):
    config = DetectorConfig(
        cw_size=50,
        trailing=TrailingPolicy.ADAPTIVE,
        model=ModelKind.WEIGHTED,
        analyzer=analyzer,
        threshold=value if analyzer is AnalyzerKind.THRESHOLD else 0.5,
        delta=value if analyzer is AnalyzerKind.AVERAGE else 0.05,
    )
    assert_equivalent(TRACE, config)


def test_uneven_tw_size():
    config = DetectorConfig(cw_size=30, tw_size=90, threshold=0.6)
    assert_equivalent(TRACE, config)


def test_fixed_interval():
    assert_equivalent(TRACE, DetectorConfig.fixed_interval(64))


def test_window_larger_than_trace():
    config = DetectorConfig(cw_size=5_000, threshold=0.5)
    assert_equivalent(TRACE, config)


def test_tiny_windows():
    config = DetectorConfig(cw_size=2, tw_size=2, threshold=0.5)
    assert_equivalent(TRACE[:500], config)


@pytest.mark.parametrize("seed", range(5))
def test_random_traces(seed):
    config = DetectorConfig(
        cw_size=33,
        trailing=TrailingPolicy.ADAPTIVE,
        model=ModelKind.WEIGHTED,
        analyzer=AnalyzerKind.AVERAGE,
        delta=0.1,
    )
    assert_equivalent(gnarly_trace(seed=seed), config)
