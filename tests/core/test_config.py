"""DetectorConfig validation and helpers."""

import pytest

from repro.core.config import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)


class TestValidation:
    def test_defaults(self):
        config = DetectorConfig(cw_size=100)
        assert config.effective_tw_size == 100
        assert config.skip_factor == 1
        assert config.trailing is TrailingPolicy.CONSTANT

    def test_explicit_tw(self):
        config = DetectorConfig(cw_size=100, tw_size=300)
        assert config.effective_tw_size == 300

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cw_size": 0},
            {"cw_size": 10, "tw_size": 0},
            {"cw_size": 10, "skip_factor": 0},
            {"cw_size": 10, "threshold": 1.5},
            {"cw_size": 10, "delta": -0.1},
            {"cw_size": 10, "enter_threshold": 2.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestFixedInterval:
    def test_factory(self):
        config = DetectorConfig.fixed_interval(500)
        assert config.is_fixed_interval
        assert config.skip_factor == 500
        assert config.effective_tw_size == 500

    def test_not_fixed_interval(self):
        assert not DetectorConfig(cw_size=500).is_fixed_interval
        assert not DetectorConfig(
            cw_size=500, skip_factor=500, tw_size=100
        ).is_fixed_interval


class TestKeyAndDescribe:
    def test_key_distinguishes_configs(self):
        base = DetectorConfig(cw_size=100)
        assert base.key() != DetectorConfig(cw_size=200).key()
        assert base.key() != DetectorConfig(cw_size=100, threshold=0.7).key()
        assert base.key() != DetectorConfig(
            cw_size=100, trailing=TrailingPolicy.ADAPTIVE
        ).key()

    def test_key_stable_for_equal_configs(self):
        assert DetectorConfig(cw_size=100).key() == DetectorConfig(cw_size=100).key()

    def test_describe_mentions_policies(self):
        config = DetectorConfig(
            cw_size=100,
            trailing=TrailingPolicy.ADAPTIVE,
            anchor=AnchorPolicy.LNN,
            resize=ResizePolicy.MOVE,
            model=ModelKind.WEIGHTED,
            analyzer=AnalyzerKind.AVERAGE,
            delta=0.1,
        )
        text = config.describe()
        assert "adaptive" in text
        assert "lnn" in text
        assert "move" in text
        assert "weighted" in text
        assert "0.1" in text


class TestScaled:
    def test_scaling_windows(self):
        config = DetectorConfig(cw_size=1_000, tw_size=2_000)
        scaled = config.scaled(0.05)
        assert scaled.cw_size == 50
        assert scaled.effective_tw_size == 100

    def test_skip_one_stays_one(self):
        assert DetectorConfig(cw_size=1_000).scaled(0.001).skip_factor == 1

    def test_floors_at_one(self):
        assert DetectorConfig(cw_size=10).scaled(0.001).cw_size == 1
