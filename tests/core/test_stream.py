"""Streaming detection tests: chunked input == one-shot run."""

import json
import pathlib

import numpy as np
import pytest

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.detector import PhaseDetector
from repro.core.stream import StreamingDetector, detect_stream
from repro.profiles.io import write_trace_binary
from repro.profiles.synthetic import SyntheticTraceBuilder


@pytest.fixture(scope="module")
def trace():
    builder = SyntheticTraceBuilder(seed=81)
    builder.add_transition(200)
    builder.add_phase(1_500, body_size=10)
    builder.add_transition(150)
    builder.add_phase(1_200, body_size=20)
    builder.add_transition(100)
    return builder.build()[0]


def config(**kwargs):
    defaults = dict(cw_size=80, threshold=0.6)
    defaults.update(kwargs)
    return DetectorConfig(**defaults)


class TestStreamingDetector:
    @pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
    def test_matches_one_shot(self, trace, chunk):
        cfg = config()
        one_shot = PhaseDetector(cfg).run(trace)
        streaming = StreamingDetector(cfg)
        data = trace.array
        for start in range(0, len(trace), chunk):
            streaming.feed(data[start : start + chunk])
        result = streaming.finish()
        assert np.array_equal(result.states, one_shot.states)
        assert result.detected_phases == one_shot.detected_phases

    @pytest.mark.parametrize("skip", [3, 50])
    def test_matches_one_shot_with_skip(self, trace, skip):
        cfg = config(skip_factor=skip)
        one_shot = PhaseDetector(cfg).run(trace)
        streaming = StreamingDetector(cfg)
        streaming.feed(trace.array)
        result = streaming.finish()
        assert np.array_equal(result.states, one_shot.states)
        assert result.detected_phases == one_shot.detected_phases

    def test_boundary_callbacks(self, trace):
        events = []
        streaming = StreamingDetector(
            config(), on_boundary=lambda kind, pos: events.append((kind, pos))
        )
        streaming.feed(trace.array)
        result = streaming.finish()
        starts = [pos for kind, pos in events if kind == "start"]
        ends = [pos for kind, pos in events if kind == "end"]
        assert len(starts) == len(result.detected_phases)
        assert len(ends) == len(result.detected_phases)
        for phase, start, end in zip(result.detected_phases, starts, ends):
            assert phase.detected_start == start
            assert phase.end == end

    def test_end_fires_at_stream_end_for_open_phase(self):
        builder = SyntheticTraceBuilder(seed=82)
        builder.add_phase(800, body_size=6)
        trace, _ = builder.build()
        events = []
        streaming = StreamingDetector(
            config(cw_size=40), on_boundary=lambda kind, pos: events.append((kind, pos))
        )
        streaming.feed(trace.array)
        streaming.finish()
        assert events[-1][0] == "end"
        assert events[-1][1] == len(trace)

    def test_position_tracks_consumption(self, trace):
        streaming = StreamingDetector(config(skip_factor=7))
        streaming.feed(trace.array[:100])
        # 100 elements = 14 full groups of 7 consumed; 2 buffered.
        assert streaming.position == 98
        streaming.finish()
        assert streaming.position == 100


class TestDetectStream:
    def test_from_file(self, trace, tmp_path):
        path = tmp_path / "t.btrace"
        write_trace_binary(trace, path)
        cfg = config(trailing=TrailingPolicy.ADAPTIVE)
        from_file = detect_stream(str(path), cfg, chunk_size=256)
        one_shot = PhaseDetector(cfg).run(trace)
        assert np.array_equal(from_file.states, one_shot.states)
        assert from_file.detected_phases == one_shot.detected_phases

    def test_from_iterable(self, trace):
        cfg = config()
        chunks = [trace.array[i : i + 500] for i in range(0, len(trace), 500)]
        result = detect_stream(chunks, cfg)
        one_shot = PhaseDetector(cfg).run(trace)
        assert np.array_equal(result.states, one_shot.states)

    def test_pathlib_path_source(self, trace, tmp_path):
        """Regression: a pathlib.Path source must stream identically to
        both the str path and the in-memory run (detect_stream once
        special-cased str only)."""
        path = tmp_path / "t.btrace"
        write_trace_binary(trace, path)
        cfg = config()
        assert isinstance(path, pathlib.Path)
        from_path = detect_stream(path, cfg, chunk_size=300)
        from_str = detect_stream(str(path), cfg, chunk_size=300)
        one_shot = PhaseDetector(cfg).run(trace)
        assert np.array_equal(from_path.states, one_shot.states)
        assert from_path.detected_phases == one_shot.detected_phases
        assert np.array_equal(from_path.states, from_str.states)
        assert from_path.detected_phases == from_str.detected_phases


class TestStreamCheckpoint:
    @pytest.mark.parametrize("cut", [137, 1_000, 2_600])
    def test_resume_matches_uninterrupted(self, trace, cut):
        """Checkpoint mid-stream (including with a partial group pending),
        JSON round-trip, restore, feed the rest: identical output."""
        cfg = config(skip_factor=7)
        data = trace.array

        full = StreamingDetector(cfg)
        full.feed(data)
        full_result = full.finish()

        head = StreamingDetector(cfg)
        head.feed(data[:cut])
        blob = json.dumps(head.checkpoint())

        resumed = StreamingDetector.restore(json.loads(blob))
        assert resumed.elements_fed == cut
        resumed.feed(data[cut:])
        result = resumed.finish()

        assert np.array_equal(result.states, full_result.states)
        assert result.detected_phases == full_result.detected_phases

    def test_boundary_callbacks_survive_resume(self, trace):
        cfg = config()
        data = trace.array
        full_events = []
        full = StreamingDetector(
            cfg, on_boundary=lambda kind, pos: full_events.append((kind, pos))
        )
        full.feed(data)
        full.finish()

        events = []
        head = StreamingDetector(
            cfg, on_boundary=lambda kind, pos: events.append((kind, pos))
        )
        head.feed(data[:1_500])
        resumed = StreamingDetector.restore(
            head.checkpoint(),
            on_boundary=lambda kind, pos: events.append((kind, pos)),
        )
        resumed.feed(data[1_500:])
        resumed.finish()
        assert events == full_events

    def test_missing_stream_section_rejected(self, trace):
        from repro.core.runtime import CheckpointError, DetectorRuntime

        runtime = DetectorRuntime(config())
        runtime.step(trace.array[:1].tolist())
        with pytest.raises(CheckpointError, match="stream"):
            StreamingDetector.restore(runtime.checkpoint())
