"""Both detector implementations must emit identical event streams.

The optimized engine already matches the reference detector's *output*
bit-for-bit (test_engine_equivalence); observability extends the
contract to the *event stream*: same events, same order, same payloads.
"""

import pytest

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    PhaseDetector,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.engine import run_detector
from repro.obs.bus import MemorySink
from repro.obs.events import replay_phases, validate_event
from tests.core.test_engine_equivalence import gnarly_trace

TRACE = gnarly_trace()

CONFIGS = [
    DetectorConfig(cw_size=40, threshold=0.6),
    DetectorConfig(cw_size=40, skip_factor=7, threshold=0.6,
                   trailing=TrailingPolicy.ADAPTIVE),
    DetectorConfig(cw_size=60, trailing=TrailingPolicy.ADAPTIVE,
                   anchor=AnchorPolicy.LNN, resize=ResizePolicy.MOVE,
                   threshold=0.55),
    DetectorConfig(cw_size=50, trailing=TrailingPolicy.ADAPTIVE,
                   model=ModelKind.WEIGHTED, analyzer=AnalyzerKind.AVERAGE,
                   delta=0.1),
    DetectorConfig.fixed_interval(64),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
def test_event_streams_identical(config):
    reference_sink = MemorySink()
    engine_sink = MemorySink()
    reference = PhaseDetector(config, observer=reference_sink).run(TRACE)
    engine = run_detector(TRACE, config, observer=engine_sink)

    assert reference_sink.events == engine_sink.events, config.describe()
    for event in engine_sink.events:
        validate_event(event)
    assert replay_phases(engine_sink.events) == engine.detected_phases
    assert replay_phases(reference_sink.events) == reference.detected_phases


def test_observer_none_emits_nothing_and_matches():
    config = CONFIGS[1]
    sink = MemorySink()
    with_events = run_detector(TRACE, config, observer=sink)
    without_events = run_detector(TRACE, config)
    assert with_events.detected_phases == without_events.detected_phases
    assert sink.events  # the observed run did produce a stream
