"""Array-native kernel tests: bit-identical to the fused loop, and the
selection machinery (eligibility predicates, env/flag plumbing, bank
partitioning) routes every configuration to a correct path."""

import json

import numpy as np
import pytest

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.bank import DetectorBank
from repro.core.engine import run_detector
from repro.core.kernels import (
    dense_eligible,
    kernels_enabled,
    run_dense,
    run_vectorized,
    vectorized_eligible,
)
from repro.core.runtime import DetectorRuntime
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import SyntheticTraceBuilder
from repro.profiles.trace import BranchTrace


@pytest.fixture(scope="module")
def trace():
    builder = SyntheticTraceBuilder(seed=71)
    builder.add_transition(150)
    builder.add_phase(1_100, body_size=9, noise_rate=0.03)
    builder.add_transition(120)
    builder.add_phase(900, body_size=21)
    builder.add_transition(80)
    builder.add_phase(600, body_size=5, noise_rate=0.01)
    return builder.build()[0]


def matrix_configs():
    """Every model x analyzer x trailing x anchor x resize combination,
    over two window geometries (one of them fixed-interval shaped)."""
    configs = []
    geometries = [
        dict(cw_size=60, tw_size=None, skip_factor=60),  # fixed-interval shape
        dict(cw_size=45, tw_size=90, skip_factor=7),
    ]
    for geometry in geometries:
        for model in ModelKind:
            for analyzer in AnalyzerKind:
                for trailing in TrailingPolicy:
                    for anchor in AnchorPolicy:
                        for resize in ResizePolicy:
                            configs.append(
                                DetectorConfig(
                                    trailing=trailing,
                                    anchor=anchor,
                                    resize=resize,
                                    model=model,
                                    analyzer=analyzer,
                                    threshold=0.5,
                                    delta=0.08,
                                    **geometry,
                                )
                            )
    return configs


def run_both(trace, config):
    """(kernel result + checkpoint, legacy result + checkpoint)."""
    kernel_rt = DetectorRuntime(config)
    kernel = kernel_rt.run(trace, kernels=True)
    legacy_rt = DetectorRuntime(config)
    legacy = legacy_rt.run(trace, kernels=False)
    return kernel, kernel_rt.checkpoint(), legacy, legacy_rt.checkpoint()


class TestEquivalence:
    def test_full_config_matrix_bit_identical(self, trace):
        for config in matrix_configs():
            kernel, kernel_cp, legacy, legacy_cp = run_both(trace, config)
            label = config.describe()
            assert np.array_equal(kernel.states, legacy.states), label
            assert kernel.detected_phases == legacy.detected_phases, label
            # Checkpoints serialize every piece of live state (windows,
            # counts, stats, tracker); JSON equality pins them all,
            # including float bit patterns.
            assert json.dumps(kernel_cp, sort_keys=True) == json.dumps(
                legacy_cp, sort_keys=True
            ), label

    def test_phase_means_bit_identical(self, trace):
        config = DetectorConfig(cw_size=60, skip_factor=60, threshold=0.5)
        kernel, _, legacy, _ = run_both(trace, config)
        for ours, theirs in zip(kernel.detected_phases, legacy.detected_phases):
            assert ours.mean_similarity == theirs.mean_similarity

    def test_empty_and_tiny_traces(self):
        config = DetectorConfig(cw_size=5, skip_factor=3, threshold=0.5)
        for elements in ([], [1], [1, 1, 1, 1], list(range(4))):
            tiny = BranchTrace(elements)
            kernel, kernel_cp, legacy, legacy_cp = run_both(tiny, config)
            assert np.array_equal(kernel.states, legacy.states)
            assert json.dumps(kernel_cp, sort_keys=True) == json.dumps(
                legacy_cp, sort_keys=True
            )

    def test_restored_checkpoints_continue_identically(self, trace):
        """A checkpoint taken after a kernel run restores into a runtime
        that keeps advancing exactly like its legacy twin."""
        config = DetectorConfig(
            cw_size=40, skip_factor=8, trailing=TrailingPolicy.ADAPTIVE,
            threshold=0.5,
        )
        _, kernel_cp, _, legacy_cp = run_both(trace, config)
        restored_kernel = DetectorRuntime.restore(kernel_cp)
        restored_legacy = DetectorRuntime.restore(legacy_cp)
        extra = (trace.array[:400] % 9).tolist()
        groups = [extra[i : i + 8] for i in range(0, len(extra), 8)]
        kernel_states = bytearray(len(extra))
        legacy_states = bytearray(len(extra))
        restored_kernel.advance(groups, kernel_states, 0)
        restored_legacy.advance(groups, legacy_states, 0)
        assert bytes(kernel_states) == bytes(legacy_states)
        assert json.dumps(restored_kernel.checkpoint(), sort_keys=True) == (
            json.dumps(restored_legacy.checkpoint(), sort_keys=True)
        )


class TestEligibility:
    def test_vectorized_covers_threshold_constant(self):
        runtime = DetectorRuntime(DetectorConfig(cw_size=20, skip_factor=5))
        assert vectorized_eligible(runtime)
        assert dense_eligible(runtime)

    def test_average_analyzer_falls_back_to_dense(self):
        runtime = DetectorRuntime(
            DetectorConfig(cw_size=20, skip_factor=5, analyzer=AnalyzerKind.AVERAGE)
        )
        assert not vectorized_eligible(runtime)
        assert dense_eligible(runtime)

    def test_adaptive_trailing_is_vectorized(self):
        runtime = DetectorRuntime(
            DetectorConfig(cw_size=20, skip_factor=5, trailing=TrailingPolicy.ADAPTIVE)
        )
        assert vectorized_eligible(runtime)
        assert dense_eligible(runtime)

    def test_weighted_vectorized_for_any_geometry(self):
        fixed = DetectorRuntime(
            DetectorConfig(cw_size=30, skip_factor=30, model=ModelKind.WEIGHTED)
        )
        assert vectorized_eligible(fixed)
        offset = DetectorRuntime(
            DetectorConfig(cw_size=30, skip_factor=7, model=ModelKind.WEIGHTED)
        )
        assert vectorized_eligible(offset)
        assert dense_eligible(offset)

    def test_observed_runtime_ineligible(self):
        runtime = DetectorRuntime(
            DetectorConfig(cw_size=20, skip_factor=5), observer=MemorySink()
        )
        assert not vectorized_eligible(runtime)
        assert not dense_eligible(runtime)

    def test_consumed_runtime_ineligible(self, trace):
        runtime = DetectorRuntime(DetectorConfig(cw_size=20, skip_factor=5))
        states = bytearray(10)
        runtime.advance([trace.array[:10].tolist()], states, 0)
        assert not vectorized_eligible(runtime)
        assert not dense_eligible(runtime)

    def test_kernel_entry_points_reject_ineligible(self, trace):
        runtime = DetectorRuntime(
            DetectorConfig(cw_size=20, skip_factor=5, analyzer=AnalyzerKind.AVERAGE)
        )
        with pytest.raises(ValueError):
            run_vectorized(runtime, trace)
        consumed = DetectorRuntime(DetectorConfig(cw_size=20, skip_factor=5))
        consumed.advance([trace.array[:5].tolist()], bytearray(5), 0)
        with pytest.raises(ValueError):
            run_dense(consumed, trace)


class TestSelection:
    def test_env_variable_disables_kernels(self, monkeypatch):
        for value in ("0", "false", "off", "no", " OFF "):
            monkeypatch.setenv("REPRO_KERNELS", value)
            assert not kernels_enabled()
        for value in ("", "1", "on", "yes"):
            monkeypatch.setenv("REPRO_KERNELS", value)
            assert kernels_enabled()
        monkeypatch.delenv("REPRO_KERNELS")
        assert kernels_enabled()

    def test_engine_flag_and_env_agree(self, trace, monkeypatch):
        config = DetectorConfig(cw_size=50, skip_factor=10, threshold=0.5)
        enabled = run_detector(trace, config, kernels=True)
        disabled = run_detector(trace, config, kernels=False)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        env_disabled = run_detector(trace, config)
        assert np.array_equal(enabled.states, disabled.states)
        assert np.array_equal(enabled.states, env_disabled.states)
        assert enabled.detected_phases == disabled.detected_phases

    def test_observed_run_matches_kernel_run(self, trace):
        """An observer forces the legacy path; output must not change."""
        config = DetectorConfig(cw_size=50, skip_factor=10, threshold=0.5)
        observed = run_detector(trace, config, observer=MemorySink())
        kernel = run_detector(trace, config, kernels=True)
        assert np.array_equal(observed.states, kernel.states)
        assert observed.detected_phases == kernel.detected_phases


class TestBank:
    def grid(self):
        configs = []
        for model in ModelKind:
            for analyzer in AnalyzerKind:
                for trailing in TrailingPolicy:
                    configs.append(
                        DetectorConfig(
                            cw_size=40,
                            skip_factor=8,
                            trailing=trailing,
                            model=model,
                            analyzer=analyzer,
                            threshold=0.5,
                            delta=0.07,
                        )
                    )
        return configs

    def test_bank_kernels_match_bank_legacy_and_solo(self, trace):
        configs = self.grid()
        kernel_bank = DetectorBank(configs).run(trace, kernels=True)
        legacy_bank = DetectorBank(configs).run(trace, kernels=False)
        for config, ours, theirs in zip(configs, kernel_bank, legacy_bank):
            solo = run_detector(trace, config, kernels=False)
            assert np.array_equal(ours.states, theirs.states)
            assert np.array_equal(ours.states, solo.states)
            assert ours.detected_phases == theirs.detected_phases
            assert ours.detected_phases == solo.detected_phases

    def test_observed_bank_matches_kernel_bank(self, trace):
        """Observers force every bank member onto the legacy lanes."""
        configs = self.grid()[:4]
        sink = MemorySink()
        observed = DetectorBank(configs, observers=[sink] * len(configs)).run(trace)
        kernel = DetectorBank(configs).run(trace, kernels=True)
        for ours, theirs in zip(observed, kernel):
            assert np.array_equal(ours.states, theirs.states)
            assert ours.detected_phases == theirs.detected_phases
