"""Recurring-phase detection tests (the paper's future-work extension)."""

import pytest

from repro.core.config import DetectorConfig, TrailingPolicy
from repro.core.recurrence import (
    PhaseRegistry,
    PhaseSignature,
    RecurringPhaseDetector,
)
from repro.profiles.synthetic import SyntheticTraceBuilder


def adaptive_config(cw=80, threshold=0.6):
    return DetectorConfig(
        cw_size=cw, trailing=TrailingPolicy.ADAPTIVE, threshold=threshold
    )


class TestPhaseSignature:
    def test_similarity_is_asymmetric_fraction(self):
        left = PhaseSignature(frozenset({1, 2}))
        right = PhaseSignature(frozenset({1, 3}))
        assert left.similarity(right) == pytest.approx(0.5)

    def test_identical(self):
        sig = PhaseSignature(frozenset({1, 2, 3}))
        assert sig.similarity(sig) == 1.0

    def test_empty_signatures(self):
        empty = PhaseSignature(frozenset())
        full = PhaseSignature(frozenset({1}))
        assert empty.similarity(empty) == 1.0
        assert empty.similarity(full) == 0.0
        assert full.similarity(empty) == 0.0


class TestPhaseRegistry:
    def test_novel_signatures_get_fresh_ids(self):
        registry = PhaseRegistry()
        id_a, rec_a, _ = registry.observe(PhaseSignature(frozenset(range(10))))
        id_b, rec_b, _ = registry.observe(PhaseSignature(frozenset(range(100, 110))))
        assert id_a != id_b
        assert not rec_a and not rec_b
        assert len(registry) == 2

    def test_recurrence_matches_and_counts(self):
        registry = PhaseRegistry(match_threshold=0.5)
        signature = PhaseSignature(frozenset(range(10)))
        first_id, _, _ = registry.observe(signature)
        again = PhaseSignature(frozenset(range(2, 12)))  # 80% overlap
        second_id, recurred, similarity = registry.observe(again)
        assert second_id == first_id
        assert recurred
        assert similarity >= 0.5
        assert registry.occurrences(first_id) == 2

    def test_signature_union_on_match(self):
        registry = PhaseRegistry(match_threshold=0.5)
        phase_id, _, _ = registry.observe(PhaseSignature(frozenset({1, 2, 3})))
        registry.observe(PhaseSignature(frozenset({2, 3, 4})))
        assert registry.signature(phase_id).elements == frozenset({1, 2, 3, 4})

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PhaseRegistry(match_threshold=1.5)


class TestRecurringPhaseDetector:
    def _trace(self):
        builder = SyntheticTraceBuilder(seed=21)
        builder.add_transition(200)
        first = builder.add_phase(1_500, body_size=10)
        builder.add_transition(200)
        builder.add_phase(1_500, body_size=10)  # different pattern
        builder.add_transition(200)
        builder.add_phase(1_500, pattern_id=first.pattern_id)  # recurrence!
        builder.add_transition(200)
        return builder.build()

    def test_requires_adaptive_tw(self):
        with pytest.raises(ValueError):
            RecurringPhaseDetector(DetectorConfig(cw_size=50))

    def test_recurrence_identified(self):
        trace, _ = self._trace()
        result = RecurringPhaseDetector(adaptive_config()).run(trace)
        assert len(result.phases) == 3
        ids = [p.phase_id for p in result.phases]
        assert ids[0] != ids[1]        # two distinct phases...
        assert ids[2] == ids[0]        # ...then the first one recurs
        assert result.phases[2].is_recurrence
        assert result.num_distinct_phases() == 2
        assert len(result.recurrences()) == 1

    def test_phase_intervals_match_plain_detector(self):
        from repro.core.engine import run_detector

        trace, _ = self._trace()
        config = adaptive_config()
        recurrence = RecurringPhaseDetector(config).run(trace)
        plain = run_detector(trace, config)
        assert [p.phase for p in recurrence.phases] == plain.detected_phases

    def test_registry_persists_across_runs(self):
        trace, _ = self._trace()
        registry = PhaseRegistry()
        detector = RecurringPhaseDetector(adaptive_config(), registry=registry)
        first = detector.run(trace)
        second = RecurringPhaseDetector(adaptive_config(), registry=registry).run(trace)
        # Second run over the same trace: every phase is a recurrence.
        assert all(p.is_recurrence for p in second.phases)
        assert second.num_distinct_phases() == first.num_distinct_phases()

    def test_all_noise_produces_no_phases(self):
        builder = SyntheticTraceBuilder(seed=3)
        builder.add_transition(2_000)
        trace, _ = builder.build()
        result = RecurringPhaseDetector(adaptive_config()).run(trace)
        assert result.phases == []
        assert result.num_distinct_phases() == 0
