"""CLI tests (run each subcommand in-process)."""

import pytest

from repro.cli import main

SCALE = "0.1"


@pytest.fixture
def traced(tmp_path):
    assert main(["trace", "db", "--scale", SCALE, "--out", str(tmp_path)]) == 0
    return tmp_path


class TestTrace:
    def test_writes_both_files(self, traced, capsys):
        assert (traced / "db.btrace").exists()
        assert (traced / "db.cloop").exists()

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonexistent"])


class TestOracle:
    def test_prints_phases(self, traced, capsys):
        capsys.readouterr()
        assert main(["oracle", str(traced / "db.cloop"), "--mpl", "40"]) == 0
        out = capsys.readouterr().out
        assert "phases" in out
        assert "MPL=40" in out

    def test_limit_zero_prints_all(self, traced, capsys):
        capsys.readouterr()
        main(["oracle", str(traced / "db.cloop"), "--mpl", "40", "--limit", "0"])
        out = capsys.readouterr().out
        assert "more" not in out


class TestDetect:
    def test_prints_detected_phases(self, traced, capsys):
        capsys.readouterr()
        code = main(
            ["detect", str(traced / "db.btrace"), "--cw", "30", "--threshold", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detector:" in out
        assert "phases over" in out

    def test_adaptive_options(self, traced, capsys):
        capsys.readouterr()
        code = main(
            [
                "detect", str(traced / "db.btrace"),
                "--cw", "30", "--trailing", "adaptive",
                "--anchor", "lnn", "--resize", "move",
                "--model", "weighted", "--analyzer", "average", "--delta", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive[lnn,move]" in out


class TestDetectCheckpoint:
    def _detect_args(self, traced):
        return ["detect", str(traced / "db.btrace"), "--cw", "30",
                "--threshold", "0.6"]

    def _phases_output(self, capsys, argv):
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines() if line.startswith("  [")]

    def test_checkpoint_then_resume_matches_full_run(self, traced, capsys, tmp_path):
        full_phases = self._phases_output(capsys, self._detect_args(traced))
        ckpt = tmp_path / "ckpt.json"
        capsys.readouterr()
        code = main(self._detect_args(traced)
                    + ["--checkpoint", str(ckpt), "--checkpoint-at", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint after" in out
        assert "resume with:" in out
        assert ckpt.exists()
        capsys.readouterr()
        code = main(["detect", str(traced / "db.btrace"), "--resume", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed at element" in out
        resumed_phases = [l for l in out.splitlines() if l.startswith("  [")]
        assert resumed_phases == full_phases

    def test_checkpoint_at_required_and_bounded(self, traced, capsys, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        args = self._detect_args(traced) + ["--checkpoint", str(ckpt)]
        assert main(args) == 1
        assert "--checkpoint-at" in capsys.readouterr().err
        assert main(args + ["--checkpoint-at", "99999999"]) == 1

    def test_resume_rejects_garbage_file(self, traced, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "nope"}')
        capsys.readouterr()
        assert main(["detect", str(traced / "db.btrace"),
                     "--resume", str(bad)]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_and_checkpoint_mutually_exclusive(self, traced, capsys, tmp_path):
        capsys.readouterr()
        code = main(self._detect_args(traced)
                    + ["--checkpoint", str(tmp_path / "c.json"),
                       "--checkpoint-at", "400",
                       "--resume", str(tmp_path / "c.json")])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cw_required_without_resume(self, traced, capsys):
        capsys.readouterr()
        assert main(["detect", str(traced / "db.btrace")]) == 1
        assert "--cw is required" in capsys.readouterr().err


class TestBank:
    def test_bank_matches_sequential(self, traced, capsys):
        capsys.readouterr()
        code = main(["bank", str(traced / "db.btrace"), "--cw", "30",
                     "--threshold", "0.6", "--size", "6", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bank benchmark: 6 configs" in out
        assert "results identical: True" in out
        assert "speedup:" in out


class TestScore:
    def test_score_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        # Reload DEFAULT_CACHE_DIR indirection: load_traces takes cache_dir
        # from the suite module constant, so pass scale matching fixture.
        capsys.readouterr()
        code = main(
            ["score", "db", "--scale", SCALE, "--mpl", "40", "--cw", "20",
             "--threshold", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score=" in out
        assert "anchor-corrected" in out


class TestCharacteristics:
    def test_table_printed(self, capsys):
        capsys.readouterr()
        assert main(["characteristics", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "Benchmark Characteristics" in out
        for name in ("compress", "jlex"):
            assert name in out


class TestProfile:
    def test_hot_branch_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        capsys.readouterr()
        assert main(["profile", "db", "--scale", SCALE, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches" in out
        assert "@" in out


class TestSweep:
    def _tiny_profile(self, monkeypatch):
        from repro.experiments import config_space

        tiny = config_space.SuiteProfile(
            name="tinycli",
            workload_scale=0.08,
            thresholds=(0.6,),
            deltas=(0.05,),
            cw_nominals=(500,),
        )
        monkeypatch.setitem(config_space.PROFILES, "tinycli", tiny)
        return tiny

    def test_parallel_sweep_writes_cache(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinycli", "--jobs", "2",
             "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep 'tinycli'" in out
        assert "jobs=2" in out
        assert (tmp_path / "sweep-tinycli.jsonl").exists()

    def test_warm_rerun_is_lookup(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        argv = ["sweep", "--profile", "tinycli", "--benchmarks", "db",
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv + ["--jobs", "2"]) == 0
        cache_bytes = (tmp_path / "sweep-tinycli.jsonl").read_bytes()
        capsys.readouterr()
        assert main(argv + ["--jobs", "1"]) == 0
        # Fully warm: nothing recomputed, cache untouched.
        assert (tmp_path / "sweep-tinycli.jsonl").read_bytes() == cache_bytes

    def test_sweep_writes_manifest(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinycli", "--jobs", "2",
             "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert "manifest:" in capsys.readouterr().out
        assert (tmp_path / "sweep-tinycli.manifest.json").exists()


class TestObs:
    def _warm_sweep(self, tmp_path, monkeypatch):
        TestSweep()._tiny_profile(monkeypatch)
        main(["sweep", "--profile", "tinycli", "--jobs", "2",
              "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"])
        return tmp_path / "sweep-tinycli.manifest.json"

    def test_summary_renders_manifest(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "summary", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep manifest: profile 'tinycli'" in out
        assert "worker records account for all" in out

    def test_summary_accepts_cache_path(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "summary",
                     str(tmp_path / "sweep-tinycli.jsonl")]) == 0
        assert "tinycli" in capsys.readouterr().out
        assert manifest_path.exists()

    def test_summary_missing_manifest_fails(self, capsys, tmp_path):
        capsys.readouterr()
        code = main(["obs", "summary", str(tmp_path / "absent.manifest.json")])
        assert code == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_diff_of_identical_manifests(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "diff", str(manifest_path), str(manifest_path)]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_tail_prints_last_events(self, traced, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        main(["detect", str(traced / "db.btrace"), "--cw", "30",
              "--threshold", "0.6", "--events", str(events)])
        capsys.readouterr()
        assert main(["obs", "tail", str(events), "-n", "2", "--validate"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert '"ev":"run_end"' in lines[-1]


class TestEvents:
    def test_detect_records_event_stream(self, traced, capsys, tmp_path):
        import json

        events = tmp_path / "events.jsonl"
        capsys.readouterr()
        code = main(["detect", str(traced / "db.btrace"), "--cw", "30",
                     "--threshold", "0.6", "--events", str(events)])
        assert code == 0
        assert "events:" in capsys.readouterr().out
        lines = events.read_text().splitlines()
        assert json.loads(lines[0])["ev"] == "run_begin"
        assert json.loads(lines[-1])["ev"] == "run_end"

    def test_score_records_event_stream(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        events = tmp_path / "events.jsonl"
        capsys.readouterr()
        code = main(["score", "db", "--scale", SCALE, "--mpl", "40",
                     "--cw", "20", "--threshold", "0.6",
                     "--events", str(events)])
        assert code == 0
        assert events.exists()


class TestResults:
    def _warm_store_sweep(self, tmp_path, monkeypatch):
        TestSweep()._tiny_profile(monkeypatch)
        main(["sweep", "--profile", "tinycli", "--jobs", "2",
              "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"])
        return tmp_path / "sweep-tinycli.sqlite"

    def test_sweep_announces_result_db(self, capsys, tmp_path, monkeypatch):
        db_path = self._warm_store_sweep(tmp_path, monkeypatch)
        assert db_path.exists()
        assert "results db:" in capsys.readouterr().out

    def test_no_store_skips_database(self, capsys, tmp_path, monkeypatch):
        TestSweep()._tiny_profile(monkeypatch)
        capsys.readouterr()
        assert main(["sweep", "--profile", "tinycli", "--jobs", "2",
                     "--no-store", "--benchmarks", "db",
                     "--cache-dir", str(tmp_path), "--quiet"]) == 0
        assert "results db:" not in capsys.readouterr().out
        assert not (tmp_path / "sweep-tinycli.sqlite").exists()

    def test_query_best_scores(self, capsys, tmp_path, monkeypatch):
        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        code = main(["results", "query", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path),
                     "--by", "family", "benchmark", "--mpl", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best_score" in out
        assert "db" in out

    def test_query_json_rows(self, capsys, tmp_path, monkeypatch):
        import json

        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["results", "query", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path), "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows and all("best_score" in row for row in rows)

    def test_query_unknown_dimension_is_usage_error(self, capsys, tmp_path,
                                                    monkeypatch):
        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        code = main(["results", "query", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path), "--by", "nonsense"])
        assert code == 2
        assert "unknown dimension" in capsys.readouterr().err

    def test_query_missing_db_fails_cleanly(self, capsys, tmp_path):
        capsys.readouterr()
        code = main(["results", "query", "--profile", "quick",
                     "--cache-dir", str(tmp_path)])
        assert code == 1
        assert "no result database" in capsys.readouterr().err

    def test_ingest_rebuild_round_trip(self, capsys, tmp_path, monkeypatch):
        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["results", "ingest", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path), "--rebuild"]) == 0
        assert "ingested" in capsys.readouterr().out

    def test_render_matches_generate(self, capsys, tmp_path, monkeypatch):
        self._warm_store_sweep(tmp_path, monkeypatch)
        out_dir = tmp_path / "rendered"
        capsys.readouterr()
        assert main(["results", "render", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path), "--out", str(out_dir)]) == 0
        assert (out_dir / "table_2a.txt").exists()
        assert (out_dir / "figure_4.txt").exists()

    def test_runs_lists_recorded_sweeps(self, capsys, tmp_path, monkeypatch):
        import json

        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["results", "runs", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        run = json.loads(lines[0])
        assert run["profile"] == "tinycli"
        assert run["jobs"] == 2

    def test_sql_read_only(self, capsys, tmp_path, monkeypatch):
        import json

        self._warm_store_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["results", "sql", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path),
                     "SELECT COUNT(*) AS n FROM record_view"]) == 0
        row = json.loads(capsys.readouterr().out.strip())
        assert row["n"] > 0
        capsys.readouterr()
        code = main(["results", "sql", "--profile", "tinycli",
                     "--cache-dir", str(tmp_path),
                     "DELETE FROM records"])
        assert code != 0
