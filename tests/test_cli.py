"""CLI tests (run each subcommand in-process)."""

import pytest

from repro.cli import main

SCALE = "0.1"


@pytest.fixture
def traced(tmp_path):
    assert main(["trace", "db", "--scale", SCALE, "--out", str(tmp_path)]) == 0
    return tmp_path


class TestTrace:
    def test_writes_both_files(self, traced, capsys):
        assert (traced / "db.btrace").exists()
        assert (traced / "db.cloop").exists()

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonexistent"])


class TestOracle:
    def test_prints_phases(self, traced, capsys):
        capsys.readouterr()
        assert main(["oracle", str(traced / "db.cloop"), "--mpl", "40"]) == 0
        out = capsys.readouterr().out
        assert "phases" in out
        assert "MPL=40" in out

    def test_limit_zero_prints_all(self, traced, capsys):
        capsys.readouterr()
        main(["oracle", str(traced / "db.cloop"), "--mpl", "40", "--limit", "0"])
        out = capsys.readouterr().out
        assert "more" not in out


class TestDetect:
    def test_prints_detected_phases(self, traced, capsys):
        capsys.readouterr()
        code = main(
            ["detect", str(traced / "db.btrace"), "--cw", "30", "--threshold", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detector:" in out
        assert "phases over" in out

    def test_adaptive_options(self, traced, capsys):
        capsys.readouterr()
        code = main(
            [
                "detect", str(traced / "db.btrace"),
                "--cw", "30", "--trailing", "adaptive",
                "--anchor", "lnn", "--resize", "move",
                "--model", "weighted", "--analyzer", "average", "--delta", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive[lnn,move]" in out


class TestScore:
    def test_score_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        # Reload DEFAULT_CACHE_DIR indirection: load_traces takes cache_dir
        # from the suite module constant, so pass scale matching fixture.
        capsys.readouterr()
        code = main(
            ["score", "db", "--scale", SCALE, "--mpl", "40", "--cw", "20",
             "--threshold", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score=" in out
        assert "anchor-corrected" in out


class TestCharacteristics:
    def test_table_printed(self, capsys):
        capsys.readouterr()
        assert main(["characteristics", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "Benchmark Characteristics" in out
        for name in ("compress", "jlex"):
            assert name in out


class TestProfile:
    def test_hot_branch_report(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        capsys.readouterr()
        assert main(["profile", "db", "--scale", SCALE, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "dynamic branches" in out
        assert "@" in out


class TestSweep:
    def _tiny_profile(self, monkeypatch):
        from repro.experiments import config_space

        tiny = config_space.SuiteProfile(
            name="tinycli",
            workload_scale=0.08,
            thresholds=(0.6,),
            deltas=(0.05,),
            cw_nominals=(500,),
        )
        monkeypatch.setitem(config_space.PROFILES, "tinycli", tiny)
        return tiny

    def test_parallel_sweep_writes_cache(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinycli", "--jobs", "2",
             "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep 'tinycli'" in out
        assert "jobs=2" in out
        assert (tmp_path / "sweep-tinycli.jsonl").exists()

    def test_warm_rerun_is_lookup(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        argv = ["sweep", "--profile", "tinycli", "--benchmarks", "db",
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv + ["--jobs", "2"]) == 0
        cache_bytes = (tmp_path / "sweep-tinycli.jsonl").read_bytes()
        capsys.readouterr()
        assert main(argv + ["--jobs", "1"]) == 0
        # Fully warm: nothing recomputed, cache untouched.
        assert (tmp_path / "sweep-tinycli.jsonl").read_bytes() == cache_bytes

    def test_sweep_writes_manifest(self, capsys, tmp_path, monkeypatch):
        self._tiny_profile(monkeypatch)
        capsys.readouterr()
        code = main(
            ["sweep", "--profile", "tinycli", "--jobs", "2",
             "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert "manifest:" in capsys.readouterr().out
        assert (tmp_path / "sweep-tinycli.manifest.json").exists()


class TestObs:
    def _warm_sweep(self, tmp_path, monkeypatch):
        TestSweep()._tiny_profile(monkeypatch)
        main(["sweep", "--profile", "tinycli", "--jobs", "2",
              "--benchmarks", "db", "--cache-dir", str(tmp_path), "--quiet"])
        return tmp_path / "sweep-tinycli.manifest.json"

    def test_summary_renders_manifest(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "summary", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep manifest: profile 'tinycli'" in out
        assert "worker records account for all" in out

    def test_summary_accepts_cache_path(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "summary",
                     str(tmp_path / "sweep-tinycli.jsonl")]) == 0
        assert "tinycli" in capsys.readouterr().out
        assert manifest_path.exists()

    def test_summary_missing_manifest_fails(self, capsys, tmp_path):
        capsys.readouterr()
        code = main(["obs", "summary", str(tmp_path / "absent.manifest.json")])
        assert code == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_diff_of_identical_manifests(self, capsys, tmp_path, monkeypatch):
        manifest_path = self._warm_sweep(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["obs", "diff", str(manifest_path), str(manifest_path)]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_tail_prints_last_events(self, traced, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        main(["detect", str(traced / "db.btrace"), "--cw", "30",
              "--threshold", "0.6", "--events", str(events)])
        capsys.readouterr()
        assert main(["obs", "tail", str(events), "-n", "2", "--validate"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert '"ev":"run_end"' in lines[-1]


class TestEvents:
    def test_detect_records_event_stream(self, traced, capsys, tmp_path):
        import json

        events = tmp_path / "events.jsonl"
        capsys.readouterr()
        code = main(["detect", str(traced / "db.btrace"), "--cw", "30",
                     "--threshold", "0.6", "--events", str(events)])
        assert code == 0
        assert "events:" in capsys.readouterr().out
        lines = events.read_text().splitlines()
        assert json.loads(lines[0])["ev"] == "run_begin"
        assert json.loads(lines[-1])["ev"] == "run_end"

    def test_score_records_event_stream(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        events = tmp_path / "events.jsonl"
        capsys.readouterr()
        code = main(["score", "db", "--scale", SCALE, "--mpl", "40",
                     "--cw", "20", "--threshold", "0.6",
                     "--events", str(events)])
        assert code == 0
        assert events.exists()
