"""Property-based tests of window bookkeeping.

The models' incremental aggregates must agree with brute-force
recomputation from the window contents under *any* operation sequence —
pushes, flushes, anchoring with either policy, growth mode.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.config import AnchorPolicy, ResizePolicy
from repro.core.extensions import AsymmetricWeightedModel, JaccardSetModel
from repro.core.models import UnweightedSetModel, WeightedSetModel

elements = st.integers(min_value=0, max_value=9)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.lists(elements, min_size=1, max_size=8)),
        st.tuples(st.just("clear"), st.lists(elements, min_size=0, max_size=5)),
        st.tuples(
            st.just("anchor"),
            st.tuples(
                st.sampled_from(list(AnchorPolicy)),
                st.sampled_from(list(ResizePolicy)),
                st.booleans(),
            ),
        ),
    ),
    min_size=1,
    max_size=40,
)


def apply_operations(model, ops):
    for name, payload in ops:
        if name == "push":
            model.push(payload)
        elif name == "clear":
            model.clear_and_seed(payload)
        else:
            anchor, resize, adaptive = payload
            if model.tw_length or model.cw_length:
                model.anchor_and_resize(anchor, resize, adaptive)


def check_counts(model):
    assert dict(Counter(model._cw)) == model.cw_counts
    assert dict(Counter(model._tw)) == model.tw_counts


@settings(max_examples=200, deadline=None)
@given(cw=st.integers(1, 6), tw=st.integers(1, 8), ops=operations)
def test_counts_match_buffers(cw, tw, ops):
    model = UnweightedSetModel(cw, tw)
    apply_operations(model, ops)
    check_counts(model)


@settings(max_examples=200, deadline=None)
@given(cw=st.integers(1, 6), tw=st.integers(1, 8), ops=operations)
def test_unweighted_aggregates_match_bruteforce(cw, tw, ops):
    model = UnweightedSetModel(cw, tw)
    apply_operations(model, ops)
    check_counts(model)
    distinct_cw = len(model.cw_counts)
    shared = sum(1 for e in model.cw_counts if e in model.tw_counts)
    expected = shared / distinct_cw if distinct_cw else 0.0
    assert model.similarity() == expected


@settings(max_examples=150, deadline=None)
@given(cw=st.integers(1, 6), tw=st.integers(1, 8), ops=operations)
def test_weighted_similarity_matches_bruteforce(cw, tw, ops):
    model = WeightedSetModel(cw, tw)
    apply_operations(model, ops)
    check_counts(model)
    n, m = model.cw_length, model.tw_length
    if n == 0 or m == 0:
        assert model.similarity() == 0.0
        return
    expected = sum(
        min(count / n, model.tw_counts.get(e, 0) / m)
        for e, count in model.cw_counts.items()
    )
    assert abs(model.similarity() - expected) < 1e-12


@settings(max_examples=150, deadline=None)
@given(cw=st.integers(1, 6), tw=st.integers(1, 8), ops=operations)
def test_jaccard_aggregates_match_bruteforce(cw, tw, ops):
    model = JaccardSetModel(cw, tw)
    apply_operations(model, ops)
    union = set(model.cw_counts) | set(model.tw_counts)
    shared = set(model.cw_counts) & set(model.tw_counts)
    expected = len(shared) / len(union) if union else 0.0
    assert model.similarity() == expected


@settings(max_examples=100, deadline=None)
@given(cw=st.integers(1, 6), tw=st.integers(1, 8), ops=operations)
def test_window_geometry_invariants(cw, tw, ops):
    model = UnweightedSetModel(cw, tw)
    apply_operations(model, ops)
    # The CW never exceeds its capacity; the TW only when growing.
    assert model.cw_length <= cw
    if not model.growing:
        assert model.tw_length <= tw


@settings(max_examples=100, deadline=None)
@given(
    trailing=st.lists(elements, min_size=4, max_size=10),
    current=st.lists(elements, min_size=2, max_size=6),
    anchor=st.sampled_from(list(AnchorPolicy)),
)
def test_anchor_index_definition(trailing, current, anchor):
    """RN/LNN anchor positions match their prose definitions."""
    cw, tw = len(current), len(trailing)
    model = UnweightedSetModel(cw, tw)
    model.push(trailing + current)
    if list(model._tw) != trailing:
        return  # overlap shifted the windows; definition checked below anyway
    noisy = [i for i, e in enumerate(trailing) if e not in set(current)]
    index = model.anchor_index(anchor)
    if anchor is AnchorPolicy.RN:
        assert index == (noisy[-1] + 1 if noisy else 0)
    else:
        non_noisy = [i for i in range(len(trailing)) if i not in noisy]
        assert index == (non_noisy[0] if non_noisy else len(trailing))
