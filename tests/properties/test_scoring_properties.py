"""Property-based tests of the accuracy metric's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.scoring.boundaries import match_phases
from repro.scoring.metric import score_states
from repro.scoring.states import phases_from_states, states_from_phases

state_arrays = st.lists(st.booleans(), min_size=0, max_size=200).map(
    lambda bits: np.array(bits, dtype=bool)
)


@st.composite
def paired_states(draw):
    length = draw(st.integers(min_value=0, max_value=200))
    detected = draw(st.lists(st.booleans(), min_size=length, max_size=length))
    baseline = draw(st.lists(st.booleans(), min_size=length, max_size=length))
    return np.array(detected, dtype=bool), np.array(baseline, dtype=bool)


@settings(max_examples=300, deadline=None)
@given(pair=paired_states())
def test_score_components_bounded(pair):
    detected, baseline = pair
    result = score_states(detected, baseline)
    assert 0.0 <= result.score <= 1.0
    assert 0.0 <= result.correlation <= 1.0
    assert 0.0 <= result.sensitivity <= 1.0
    assert 0.0 <= result.false_positives <= 1.0
    assert result.num_matched_phases <= result.num_detected_phases
    assert result.num_matched_phases <= result.num_baseline_phases


@settings(max_examples=200, deadline=None)
@given(states=state_arrays)
def test_self_comparison_is_perfect(states):
    result = score_states(states, states.copy())
    assert result.score == 1.0
    assert result.correlation == 1.0
    assert result.sensitivity == 1.0
    assert result.false_positives == 0.0


@settings(max_examples=200, deadline=None)
@given(pair=paired_states())
def test_matched_pairs_satisfy_constraints(pair):
    detected_states, baseline_states = pair
    detected = phases_from_states(detected_states)
    baseline = phases_from_states(baseline_states)
    length = detected_states.size
    matching = match_phases(detected, baseline, length)
    matched_baseline = set()
    matched_detected = set()
    for d_index, b_index in matching.pairs:
        assert d_index not in matched_detected
        assert b_index not in matched_baseline
        matched_detected.add(d_index)
        matched_baseline.add(b_index)
        d_start, d_end = detected[d_index]
        b_start, b_end = baseline[b_index]
        next_start = baseline[b_index + 1][0] if b_index + 1 < len(baseline) else length + 1
        assert b_start <= d_start < b_end
        assert b_end <= d_end < next_start


@settings(max_examples=200, deadline=None)
@given(states=state_arrays)
def test_phase_state_round_trip(states):
    phases = phases_from_states(states)
    rebuilt = states_from_phases(phases, states.size)
    assert np.array_equal(rebuilt, states)
    # Runs are maximal: consecutive phases never touch.
    for (s1, e1), (s2, e2) in zip(phases, phases[1:]):
        assert e1 < s2
