"""Chunk-boundary fuzz: streaming must be chunking-invariant.

For every suite workload profile, feed its branch trace through
:class:`StreamingDetector` in randomly sized chunks — including chunks
smaller and larger than ``skipFactor``, so groups are split and merged
across every kind of feed boundary — and require output identical to
:meth:`PhaseDetector.run` over the whole trace.
"""

import random

import numpy as np
import pytest

from repro.core.config import (
    AnalyzerKind,
    DetectorConfig,
    ModelKind,
    TrailingPolicy,
)
from repro.core.detector import PhaseDetector
from repro.core.stream import StreamingDetector
from repro.workloads.suite import load_traces, workload_names

SCALE = 0.05
SKIP = 7

CONFIGS = {
    "threshold": DetectorConfig(cw_size=60, skip_factor=SKIP, threshold=0.6),
    "adaptive-weighted": DetectorConfig(
        cw_size=60,
        skip_factor=SKIP,
        trailing=TrailingPolicy.ADAPTIVE,
        model=ModelKind.WEIGHTED,
        analyzer=AnalyzerKind.AVERAGE,
        threshold=0.5,
        delta=0.05,
    ),
}


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("fuzz-traces")
    return {
        name: load_traces(name, scale=SCALE, cache_dir=cache_dir)[0]
        for name in workload_names()
    }


def random_chunks(total, rng):
    """Chunk sizes spanning sub-group (< SKIP) through multi-group."""
    position = 0
    while position < total:
        size = rng.choice([1, 2, SKIP - 1, SKIP, SKIP + 1, 3 * SKIP, 100, 997])
        yield position, min(size, total - position)
        position += size


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("workload", workload_names())
def test_random_chunking_matches_one_shot(traces, workload, config_name):
    trace = traces[workload]
    config = CONFIGS[config_name]
    one_shot = PhaseDetector(config).run(trace)

    rng = random.Random(f"{workload}/{config_name}")
    streaming = StreamingDetector(config)
    data = trace.array
    for start, size in random_chunks(len(data), rng):
        streaming.feed(data[start : start + size])
    result = streaming.finish()

    assert np.array_equal(result.states, one_shot.states), workload
    assert result.detected_phases == one_shot.detected_phases, workload


@pytest.mark.parametrize("workload", workload_names())
def test_chunking_invariance_across_seeds(traces, workload):
    """Different random chunkings of the same trace agree with each other."""
    trace = traces[workload]
    config = CONFIGS["threshold"]
    results = []
    for seed in range(3):
        rng = random.Random(seed)
        streaming = StreamingDetector(config)
        data = trace.array
        for start, size in random_chunks(len(data), rng):
            streaming.feed(data[start : start + size])
        results.append(streaming.finish())
    first = results[0]
    for other in results[1:]:
        assert np.array_equal(other.states, first.states)
        assert other.detected_phases == first.detected_phases
