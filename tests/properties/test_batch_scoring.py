"""Property-based bit-identity of score_states_batch vs score_states.

The batched scorer is the sweep's default scoring path; any divergence
from the scalar scorer — in the float components or the integer phase
counts — would silently change cached sweep records, so equality here
is exact (``==`` on every field), never approximate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.scoring.boundaries import BaselinePhaseIndex, match_phases
from repro.scoring.metric import score_states, score_states_batch
from repro.scoring.states import phases_from_states


@st.composite
def state_batches(draw):
    """(lanes x N matrix, list of baseline rows) over a shared N."""
    length = draw(st.integers(min_value=0, max_value=120))
    lanes = draw(st.integers(min_value=1, max_value=5))
    num_baselines = draw(st.integers(min_value=1, max_value=4))
    matrix = np.array(
        [
            draw(st.lists(st.booleans(), min_size=length, max_size=length))
            for _ in range(lanes)
        ],
        dtype=bool,
    ).reshape(lanes, length)
    baselines = [
        np.array(
            draw(st.lists(st.booleans(), min_size=length, max_size=length)),
            dtype=bool,
        )
        for _ in range(num_baselines)
    ]
    return matrix, baselines


@st.composite
def corrected_intervals(draw, states):
    """A sorted, disjoint interval list inside ``states``'s index range.

    Mimics anchor-corrected phases: arbitrary valid intervals that need
    not equal the maximal P-runs of the state row.
    """
    length = int(states.size)
    count = draw(st.integers(min_value=0, max_value=4))
    bounds = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=length),
                min_size=2 * count,
                max_size=2 * count,
            )
        )
    )
    return [(bounds[2 * i], bounds[2 * i + 1]) for i in range(count)]


def assert_identical(batch_score, scalar_score):
    assert batch_score.correlation == scalar_score.correlation
    assert batch_score.sensitivity == scalar_score.sensitivity
    assert batch_score.false_positives == scalar_score.false_positives
    assert batch_score.score == scalar_score.score
    assert batch_score.num_detected_phases == scalar_score.num_detected_phases
    assert batch_score.num_baseline_phases == scalar_score.num_baseline_phases
    assert batch_score.num_matched_phases == scalar_score.num_matched_phases


@settings(max_examples=300, deadline=None)
@given(batch=state_batches())
def test_batch_matches_scalar_plain(batch):
    matrix, baselines = batch
    grid = score_states_batch(matrix, baselines)
    for lane in range(matrix.shape[0]):
        for column, base in enumerate(baselines):
            assert_identical(
                grid[lane][column], score_states(matrix[lane], base)
            )


@settings(max_examples=200, deadline=None)
@given(batch=state_batches(), data=st.data())
def test_batch_matches_scalar_with_corrected_phases(batch, data):
    # Anchor-corrected inputs: per-lane interval overrides, exactly how
    # _score_results passes result.corrected_phases().
    matrix, baselines = batch
    overrides = [
        data.draw(corrected_intervals(matrix[lane]))
        for lane in range(matrix.shape[0])
    ]
    grid = score_states_batch(matrix, baselines, detected_phases=overrides)
    for lane in range(matrix.shape[0]):
        for column, base in enumerate(baselines):
            assert_identical(
                grid[lane][column],
                score_states(matrix[lane], base, detected_phases=overrides[lane]),
            )


@settings(max_examples=200, deadline=None)
@given(batch=state_batches())
def test_baseline_index_matches_match_phases(batch):
    matrix, baselines = batch
    length = int(matrix.shape[1])
    for base in baselines:
        index = BaselinePhaseIndex(phases_from_states(base), length)
        for lane in range(matrix.shape[0]):
            detected = phases_from_states(matrix[lane])
            got = index.match(detected)
            want = match_phases(detected, phases_from_states(base), length)
            assert got == want


def test_all_p_and_empty_phase_edges():
    length = 50
    all_p = np.ones(length, dtype=bool)
    all_t = np.zeros(length, dtype=bool)
    alternating = np.arange(length) % 2 == 0
    matrix = np.vstack([all_p, all_t, alternating])
    baselines = [all_p, all_t, alternating]
    grid = score_states_batch(matrix, baselines)
    for lane in range(3):
        for column in range(3):
            assert_identical(
                grid[lane][column], score_states(matrix[lane], baselines[column])
            )


def test_zero_length_batch():
    matrix = np.zeros((2, 0), dtype=bool)
    grid = score_states_batch(matrix, [np.zeros(0, dtype=bool)])
    scalar = score_states(matrix[0], np.zeros(0, dtype=bool))
    for lane in range(2):
        assert_identical(grid[lane][0], scalar)
