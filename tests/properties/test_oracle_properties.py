"""Property-based tests of the baseline oracle's invariants."""

from hypothesis import given, settings, strategies as st

from repro.baseline.oracle import solve_baseline
from repro.profiles.callloop import CallLoopEvent, CallLoopTrace, EventKind


@st.composite
def call_loop_traces(draw):
    """Generate a random well-nested call-loop trace.

    A recursive structure of loops and calls; times advance by random
    amounts at every step (the "branches" executed between events).
    """
    events = []
    time = 0
    max_depth = draw(st.integers(min_value=1, max_value=4))
    num_methods = draw(st.integers(min_value=1, max_value=4))
    num_loops = draw(st.integers(min_value=1, max_value=4))

    def advance():
        nonlocal time
        time += draw(st.integers(min_value=0, max_value=30))

    def emit_block(depth):
        count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(count):
            advance()
            if depth >= max_depth:
                continue
            if draw(st.booleans()):
                loop_id = draw(st.integers(min_value=0, max_value=num_loops - 1))
                events.append(CallLoopEvent(EventKind.LOOP_ENTRY, loop_id, time))
                emit_block(depth + 1)
                advance()
                events.append(CallLoopEvent(EventKind.LOOP_EXIT, loop_id, time))
            else:
                method = draw(st.integers(min_value=1, max_value=num_methods))
                events.append(CallLoopEvent(EventKind.METHOD_ENTRY, method, time))
                emit_block(depth + 1)
                advance()
                events.append(CallLoopEvent(EventKind.METHOD_EXIT, method, time))

    events.append(CallLoopEvent(EventKind.METHOD_ENTRY, 0, 0))
    emit_block(0)
    advance()
    events.append(CallLoopEvent(EventKind.METHOD_EXIT, 0, time))
    return CallLoopTrace(events, num_branches=time)


@settings(max_examples=200, deadline=None)
@given(trace=call_loop_traces(), mpl=st.integers(min_value=1, max_value=120))
def test_phases_disjoint_in_bounds_and_long_enough(trace, mpl):
    solution = solve_baseline(trace, mpl)
    previous_end = 0
    for phase in solution.phases:
        assert phase.length >= mpl
        assert 0 <= phase.start < phase.end <= trace.num_branches
        assert phase.start >= previous_end
        previous_end = phase.end


@settings(max_examples=100, deadline=None)
@given(trace=call_loop_traces())
def test_phase_count_monotone_in_mpl(trace):
    """Raising the MPL can only merge or drop phases, never add them."""
    counts = [solve_baseline(trace, mpl).num_phases for mpl in (1, 5, 20, 60, 200)]
    assert counts == sorted(counts, reverse=True)


@settings(max_examples=100, deadline=None)
@given(trace=call_loop_traces(), mpl=st.integers(min_value=1, max_value=120))
def test_states_consistent_with_phases(trace, mpl):
    solution = solve_baseline(trace, mpl)
    states = solution.states()
    assert states.shape == (trace.num_branches,)
    assert int(states.sum()) == solution.elements_in_phase


@settings(max_examples=100, deadline=None)
@given(trace=call_loop_traces(), mpl=st.integers(min_value=1, max_value=120))
def test_hierarchy_leaves_equal_flat_solution(trace, mpl):
    """The flat oracle is exactly the hierarchy's innermost level."""
    from repro.baseline.hierarchy import solve_hierarchy

    hierarchy = solve_hierarchy(trace, mpl)
    flat = solve_baseline(trace, mpl)
    assert sorted((l.start, l.end) for l in hierarchy.leaves()) == sorted(
        (p.start, p.end) for p in flat.phases
    )
    # And the hierarchy is laminar with depths increasing downward.
    for node in hierarchy.walk():
        for child in node.children:
            assert node.start <= child.start <= child.end <= node.end
            assert child.depth == node.depth + 1


@settings(max_examples=150, deadline=None)
@given(trace=call_loop_traces())
def test_merge_adjacent_is_idempotent_and_shape_preserving(trace):
    """Merging twice changes nothing; spans and order are preserved."""
    from repro.baseline.cri import extract_cris, merge_adjacent
    from repro.baseline.tree import build_repetition_tree

    cris = extract_cris(build_repetition_tree(trace))

    def flatten(items):
        result = []
        for cri in items:
            result.append((cri.static_id, cri.start, cri.end, cri.kind, cri.count))
            result.extend(flatten(cri.children))
        return result

    merged_once = merge_adjacent(cris)
    merged_twice = merge_adjacent(merged_once)
    assert flatten(merged_once) == flatten(merged_twice)
    # Sibling order preserved and spans non-overlapping at each level.
    def check_level(items):
        previous_end = None
        for cri in items:
            assert cri.start <= cri.end
            if previous_end is not None:
                assert cri.start >= previous_end
            previous_end = cri.end
            check_level(cri.children)
    check_level(merged_once)
