"""Property-based equivalence: array-native kernels vs the fused loop.

The fused loop is itself pinned to the reference ``PhaseDetector`` by
``test_engine_properties``; these properties close the chain by pinning
the kernels (dense advancer and the vectorized fast paths — constant,
adaptive, and weighted walks, solo and through the batched bank
advancer) to the fused loop across the full configuration space —
states, phases, checkpoints, and checkpoint-restore-then-continue
interleavings, including checkpoints taken mid-episode (inside an open
phase, Adaptive TW still growing).
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.bank import DetectorBank
from repro.core.runtime import DetectorRuntime
from repro.profiles.trace import BranchTrace

# Small alphabets make both repetition and collisions likely.
elements = st.integers(min_value=0, max_value=12)

configs = st.builds(
    DetectorConfig,
    cw_size=st.integers(min_value=1, max_value=12),
    tw_size=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
    skip_factor=st.integers(min_value=1, max_value=9),
    trailing=st.sampled_from(list(TrailingPolicy)),
    anchor=st.sampled_from(list(AnchorPolicy)),
    resize=st.sampled_from(list(ResizePolicy)),
    model=st.sampled_from(list(ModelKind)),
    analyzer=st.sampled_from(list(AnalyzerKind)),
    threshold=st.sampled_from([0.3, 0.5, 0.7, 0.9]),
    delta=st.sampled_from([0.01, 0.1, 0.3]),
    enter_threshold=st.sampled_from([0.4, 0.6]),
)


def run_both(trace, config):
    kernel_rt = DetectorRuntime(config)
    kernel = kernel_rt.run(trace, kernels=True)
    legacy_rt = DetectorRuntime(config)
    legacy = legacy_rt.run(trace, kernels=False)
    return kernel, kernel_rt, legacy, legacy_rt


def assert_identical(kernel, kernel_rt, legacy, legacy_rt):
    assert np.array_equal(kernel.states, legacy.states)
    assert kernel.detected_phases == legacy.detected_phases
    assert json.dumps(kernel_rt.checkpoint(), sort_keys=True) == (
        json.dumps(legacy_rt.checkpoint(), sort_keys=True)
    )


@settings(max_examples=150, deadline=None)
@given(trace=st.lists(elements, min_size=0, max_size=400), config=configs)
def test_kernels_match_fused_on_random_traces(trace, config):
    assert_identical(*run_both(BranchTrace(trace), config))


@settings(max_examples=60, deadline=None)
@given(
    body=st.integers(min_value=1, max_value=6),
    repeats=st.integers(min_value=10, max_value=60),
    noise=st.integers(min_value=0, max_value=40),
    config=configs,
)
def test_kernels_match_fused_on_structured_traces(body, repeats, noise, config):
    """Phased traces exercise entries, exits, growth, and anchoring."""
    phase = list(range(body)) * repeats
    transition = list(range(100, 100 + noise))
    trace = BranchTrace(transition + phase + transition + phase)
    assert_identical(*run_both(trace, config))


@settings(max_examples=60, deadline=None)
@given(
    trace=st.lists(elements, min_size=1, max_size=300),
    extra=st.lists(elements, min_size=1, max_size=120),
    config=configs,
)
def test_kernel_checkpoints_restore_and_continue(trace, extra, config):
    """Restore from a post-kernel-run checkpoint and keep streaming: the
    continuation stays in lockstep with the legacy twin, including at
    chunk boundaries that split skip groups."""
    kernel, kernel_rt, legacy, legacy_rt = run_both(BranchTrace(trace), config)
    restored_kernel = DetectorRuntime.restore(kernel_rt.checkpoint())
    restored_legacy = DetectorRuntime.restore(legacy_rt.checkpoint())
    skip = config.skip_factor
    groups = [extra[i : i + skip] for i in range(0, len(extra), skip)]
    kernel_states = bytearray(len(extra))
    legacy_states = bytearray(len(extra))
    restored_kernel.advance(groups, kernel_states, 0)
    restored_legacy.advance(groups, legacy_states, 0)
    assert bytes(kernel_states) == bytes(legacy_states)
    assert json.dumps(restored_kernel.checkpoint(), sort_keys=True) == (
        json.dumps(restored_legacy.checkpoint(), sort_keys=True)
    )


@settings(max_examples=50, deadline=None)
@given(
    body=st.integers(min_value=1, max_value=5),
    lead=st.lists(elements, min_size=0, max_size=80),
    tail_repeats=st.integers(min_value=20, max_value=80),
    extra=st.lists(elements, min_size=1, max_size=120),
    config=configs,
)
def test_restore_and_continue_mid_episode(body, lead, tail_repeats, extra, config):
    """Checkpoints taken *inside* a phase episode restore exactly.

    The trace ends mid-phase (a long pure repetition tail), so for
    configurations that detect it the checkpoint captures an open
    episode — for Adaptive trailing, a TW still in growth mode.  The
    restored runtime must continue in lockstep with its legacy twin
    through the phase's eventual exit (the random ``extra`` stream).
    """
    phase_tail = list(range(body)) * tail_repeats
    kernel, kernel_rt, legacy, legacy_rt = run_both(
        BranchTrace(lead + phase_tail), config
    )
    assert_identical(kernel, kernel_rt, legacy, legacy_rt)
    restored_kernel = DetectorRuntime.restore(kernel_rt.checkpoint())
    restored_legacy = DetectorRuntime.restore(legacy_rt.checkpoint())
    skip = config.skip_factor
    groups = [extra[i : i + skip] for i in range(0, len(extra), skip)]
    kernel_states = bytearray(len(extra))
    legacy_states = bytearray(len(extra))
    restored_kernel.advance(groups, kernel_states, 0)
    restored_legacy.advance(groups, legacy_states, 0)
    assert bytes(kernel_states) == bytes(legacy_states)
    assert json.dumps(restored_kernel.checkpoint(), sort_keys=True) == (
        json.dumps(restored_legacy.checkpoint(), sort_keys=True)
    )


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(elements, min_size=0, max_size=300),
    bank_configs=st.lists(configs, min_size=1, max_size=6),
)
def test_batched_bank_matches_sequential_legacy(trace, bank_configs):
    """The batched bank advancer (shared per-signature series) is a pure
    cache: states, phases, and checkpoints of every lane are identical
    to per-lane legacy runs — for any mix of constant/adaptive,
    unweighted/weighted, threshold/average lanes and any geometry
    overlap between lanes (shared signatures exercise the cache)."""
    branch_trace = BranchTrace(trace)
    bank = DetectorBank(bank_configs)
    batched = bank.run(branch_trace, kernels=True, batched=True)
    solo_runtimes = [DetectorRuntime(config) for config in bank_configs]
    for runtime, bank_runtime, result in zip(
        solo_runtimes, bank.runtimes, batched
    ):
        solo = runtime.run(branch_trace, kernels=False)
        assert np.array_equal(result.states, solo.states)
        assert result.detected_phases == solo.detected_phases
        assert json.dumps(bank_runtime.checkpoint(), sort_keys=True) == (
            json.dumps(runtime.checkpoint(), sort_keys=True)
        )
