"""Property-based equivalence: optimized engine vs reference detector."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    AnalyzerKind,
    AnchorPolicy,
    DetectorConfig,
    ModelKind,
    PhaseDetector,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.engine import run_detector
from repro.profiles.trace import BranchTrace

# Small alphabets make both repetition and collisions likely.
elements = st.integers(min_value=0, max_value=12)

configs = st.builds(
    DetectorConfig,
    cw_size=st.integers(min_value=1, max_value=12),
    tw_size=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
    skip_factor=st.integers(min_value=1, max_value=9),
    trailing=st.sampled_from(list(TrailingPolicy)),
    anchor=st.sampled_from(list(AnchorPolicy)),
    resize=st.sampled_from(list(ResizePolicy)),
    model=st.sampled_from(list(ModelKind)),
    analyzer=st.sampled_from(list(AnalyzerKind)),
    threshold=st.sampled_from([0.3, 0.5, 0.7, 0.9]),
    delta=st.sampled_from([0.01, 0.1, 0.3]),
    enter_threshold=st.sampled_from([0.4, 0.6]),
)


@settings(max_examples=150, deadline=None)
@given(trace=st.lists(elements, min_size=0, max_size=400), config=configs)
def test_engine_matches_reference(trace, config):
    branch_trace = BranchTrace(trace)
    reference = PhaseDetector(config).run(branch_trace)
    engine = run_detector(branch_trace, config)
    assert np.array_equal(reference.states, engine.states)
    assert reference.detected_phases == engine.detected_phases


@settings(max_examples=60, deadline=None)
@given(
    body=st.integers(min_value=1, max_value=6),
    repeats=st.integers(min_value=10, max_value=60),
    noise=st.integers(min_value=0, max_value=40),
    config=configs,
)
def test_engine_matches_reference_on_structured_traces(body, repeats, noise, config):
    """Phased traces exercise the in-phase paths (growth, anchoring)."""
    phase = list(range(body)) * repeats
    transition = list(range(100, 100 + noise))
    trace = BranchTrace(transition + phase + transition + phase)
    reference = PhaseDetector(config).run(trace)
    engine = run_detector(trace, config)
    assert np.array_equal(reference.states, engine.states)
    assert reference.detected_phases == engine.detected_phases


@settings(max_examples=100, deadline=None)
@given(trace=st.lists(elements, min_size=0, max_size=300), config=configs)
def test_detector_output_invariants(trace, config):
    """States/phases structural invariants hold for any input."""
    result = run_detector(BranchTrace(trace), config)
    assert result.states.shape == (len(trace),)
    previous_end = 0
    for phase in result.detected_phases:
        assert 0 <= phase.corrected_start <= phase.detected_start
        assert previous_end <= phase.detected_start < phase.end <= len(trace)
        previous_end = phase.end
    # Detected phases agree with the state array's P-runs.
    from repro.scoring.states import phases_from_states

    assert [(p.detected_start, p.end) for p in result.detected_phases] == (
        phases_from_states(result.states)
    )
