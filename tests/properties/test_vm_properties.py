"""Property-based tests of the MiniLang compiler and MiniVM.

The central property: compiling and interpreting a randomly generated
expression gives the same value as evaluating the corresponding Python
expression with MiniVM's truncating division semantics.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.vm.compiler import compile_source
from repro.vm.interpreter import run_program
from repro.vm.tracing import CollectingSink
from repro.profiles.callloop import EventKind


def trunc_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def trunc_mod(a, b):
    return a - trunc_div(a, b) * b


@st.composite
def expressions(draw, depth=0):
    """Generate (source text, python value) pairs."""
    if depth >= 4 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=50))
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", "==", "!=", "&&", "||"]))
    left_src, left_val = draw(expressions(depth=depth + 1))
    right_src, right_val = draw(expressions(depth=depth + 1))
    source = f"({left_src} {op} {right_src})"
    if op == "+":
        value = left_val + right_val
    elif op == "-":
        value = left_val - right_val
    elif op == "*":
        value = left_val * right_val
    elif op == "/":
        assume(right_val != 0)
        value = trunc_div(left_val, right_val)
    elif op == "%":
        assume(right_val != 0)
        value = trunc_mod(left_val, right_val)
    elif op == "<":
        value = int(left_val < right_val)
    elif op == "<=":
        value = int(left_val <= right_val)
    elif op == "==":
        value = int(left_val == right_val)
    elif op == "!=":
        value = int(left_val != right_val)
    elif op == "&&":
        value = int(left_val != 0 and right_val != 0)
    else:  # ||
        value = int(left_val != 0 or right_val != 0)
    return source, value


@settings(max_examples=300, deadline=None)
@given(pair=expressions())
def test_compiled_expressions_match_python(pair):
    source, expected = pair
    program = compile_source(f"fn main() {{ return {source}; }}")
    assert run_program(program) == expected


@settings(max_examples=100, deadline=None)
@given(
    iterations=st.integers(min_value=0, max_value=50),
    step=st.integers(min_value=1, max_value=5),
)
def test_loop_sum_matches_python(iterations, step):
    source = f"""
    fn main() {{
        var s = 0;
        for (var i = 0; i < {iterations}; i = i + {step}) {{ s = s + i; }}
        return s;
    }}
    """
    assert run_program(compile_source(source)) == sum(range(0, iterations, step))


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=0, max_value=12))
def test_recursive_fibonacci(n):
    source = """
    fn fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    fn main() { return fib(%d); }
    """ % n

    def fib(k):
        a, b = 0, 1
        for _ in range(k):
            a, b = b, a + b
        return a

    assert run_program(compile_source(source)) == fib(n)


@settings(max_examples=60, deadline=None)
@given(
    outer=st.integers(min_value=0, max_value=8),
    inner=st.integers(min_value=0, max_value=8),
)
def test_instrumentation_event_counts(outer, inner):
    """Loop entry/exit counts follow directly from the iteration counts."""
    source = f"""
    fn main() {{
        var acc = 0;
        for (var i = 0; i < {outer}; i = i + 1) {{
            for (var j = 0; j < {inner}; j = j + 1) {{ acc = acc + 1; }}
        }}
        return acc;
    }}
    """
    program = compile_source(source)
    sink = CollectingSink()
    result = run_program(program, sink=sink)
    assert result == outer * inner
    loop_entries = sum(1 for e in sink.events if e.kind is EventKind.LOOP_ENTRY)
    loop_exits = sum(1 for e in sink.events if e.kind is EventKind.LOOP_EXIT)
    # Outer loop runs once; inner loop once per outer iteration.
    assert loop_entries == loop_exits == 1 + outer
    # Conditional branches: outer tests (outer+1) + inner tests per outer.
    assert len(sink.elements) == (outer + 1) + outer * (inner + 1)


@settings(max_examples=200, deadline=None)
@given(pair=expressions())
def test_optimizer_preserves_expression_values(pair):
    """compile(optimize=True) evaluates every expression identically."""
    source, expected = pair
    program = compile_source(f"fn main() {{ return {source}; }}", optimize=True)
    assert run_program(program) == expected


@settings(max_examples=60, deadline=None)
@given(
    iterations=st.integers(min_value=0, max_value=30),
    threshold=st.integers(min_value=0, max_value=30),
)
def test_optimizer_preserves_loop_behavior(iterations, threshold):
    source = f"""
    fn main() {{
        var acc = 0;
        var i = 0;
        while (i < {iterations}) {{
            if (i < {threshold}) {{ acc = acc + 2 * 3; }} else {{ acc = acc - (1 + 0); }}
            i = i + 1;
        }}
        return acc;
    }}
    """
    plain = run_program(compile_source(source))
    optimized = run_program(compile_source(source, optimize=True))
    assert plain == optimized
