"""Hypothesis: FOCuS/NEWMA park–rehydrate is invisible, bit for bit.

Mirrors the PR 6 serve-layer guarantees for the new families: an engine
parked (``checkpoint()`` → JSON → ``restore``) at *every* chunk
boundary must produce exactly the states, phases, and final checkpoint
bytes of an engine that ran uninterrupted — for any trace and any
chunking, not just the hand-picked ones in the unit tests.
"""

import json
from dataclasses import replace

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.comparators import engine_family
from repro.core.decision import build_engine, restore_engine

elements = st.integers(min_value=0, max_value=12)

#: cw_size doubles as the warm-up / window scale for these families;
#: keep it small so short hypothesis traces exercise post-warm-up code.
family_configs = st.sampled_from(["focus", "newma", "das_pearson", "lu_dynamo"]).flatmap(
    lambda name: st.builds(
        lambda cw, bar: replace(
            engine_family(name).default_config(), cw_size=cw, stat_threshold=bar
        ),
        st.integers(min_value=2, max_value=24),
        st.one_of(st.none(), st.floats(min_value=0.5, max_value=8.0)),
    )
)


def roundtrip(engine):
    """checkpoint → canonical JSON → restore, returning the new engine."""
    blob = json.dumps(engine.checkpoint(), separators=(",", ":"))
    return restore_engine(json.loads(blob)), blob


@settings(max_examples=120, deadline=None)
@given(
    trace=st.lists(elements, min_size=0, max_size=400),
    config=family_configs,
    chunk=st.integers(min_value=1, max_value=97),
)
def test_park_at_every_chunk_boundary_is_bit_identical(trace, config, chunk):
    straight = build_engine(config)
    states_a = bytearray(len(trace))
    straight.advance_flat(trace, states_a, 0)
    phases_a = straight.finish(len(trace))

    parked = build_engine(config)
    states_b = bytearray(len(trace))
    base = 0
    while base < len(trace):
        stop = min(base + chunk, len(trace))
        parked.advance_flat(trace[base:stop], states_b, base)
        parked, _ = roundtrip(parked)
        base = stop
    phases_b = parked.finish(len(trace))

    assert bytes(states_a) == bytes(states_b)
    assert phases_a == phases_b


@settings(max_examples=120, deadline=None)
@given(
    trace=st.lists(elements, min_size=1, max_size=300),
    config=family_configs,
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_checkpoint_is_a_fixed_point(trace, config, cut):
    """restore(checkpoint(e)).checkpoint() == checkpoint(e), bytewise."""
    engine = build_engine(config)
    stop = round(cut * len(trace))
    engine.advance_flat(trace[:stop], bytearray(stop), 0)
    restored, blob = roundtrip(engine)
    assert json.dumps(restored.checkpoint(), separators=(",", ":")) == blob
    # And the parked engine's future equals the original's.
    tail = trace[stop:]
    states_a = bytearray(len(tail))
    states_b = bytearray(len(tail))
    engine.advance_flat(tail, states_a, 0)
    restored.advance_flat(tail, states_b, 0)
    assert bytes(states_a) == bytes(states_b)
    assert engine.finish(len(trace)) == restored.finish(len(trace))
