"""Compaction round-trip fuzz: any schedule folds to serial bytes.

For an arbitrary spec subset, an arbitrary partition of it into chunks
and an arbitrary completion interleaving (which order workers finish and
write chunk files in), the compacted JSONL cache must be byte-identical
to what a serial sweep would have appended for the same plan — including
when a prefix of the plan was already cached before the run (a resume).
Records are synthetic: serialization, planning and compaction never look
inside the scores, so no detector needs to run.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import AnalyzerKind, AnchorPolicy, ModelKind, ResizePolicy
from repro.experiments.config_space import ConfigSpec
from repro.experiments.runner import SweepRecord
from repro.experiments.store import (
    ChunkStore,
    cache_line,
    compact_chunks,
    plan_chunks,
)

MPLS = (1_000, 10_000)
FINGERPRINTS = {"db": "fp-db", "jess": "fp-jess"}

# A diverse pool of grid points (distinct identities on several axes).
SPEC_POOL = [
    ConfigSpec(family, cw, model, analyzer, value, anchor, resize)
    for family, cw in (("constant", 500), ("adaptive", 5_000), ("fixed", 1_000))
    for model in (ModelKind.UNWEIGHTED, ModelKind.WEIGHTED)
    for analyzer, value in ((AnalyzerKind.THRESHOLD, 0.6), (AnalyzerKind.AVERAGE, 0.05))
    for anchor in (AnchorPolicy.RN,)
    for resize in (ResizePolicy.SLIDE,)
]


def _synthetic_record(benchmark, spec, mpl, salt):
    return SweepRecord(
        benchmark=benchmark,
        family=spec.family,
        cw_nominal=spec.cw_nominal,
        model=spec.model.value,
        analyzer=spec.analyzer_label(),
        anchor=spec.anchor.value,
        resize=spec.resize.value,
        mpl_nominal=mpl,
        score=round(salt / 97.0, 6),
        correlation=round(salt / 194.0, 6),
        sensitivity=round(salt / 97.0, 6),
        false_positives=float(salt % 7),
        corrected_score=round(salt / 130.0, 6),
        num_detected_phases=salt % 11,
        num_baseline_phases=7,
    )


def _chunk_lines(chunk):
    fingerprint = FINGERPRINTS[chunk.benchmark]
    return [
        cache_line(
            _synthetic_record(
                chunk.benchmark, spec, mpl,
                (chunk.index * 1_009 + position * 17 + mpl) % 97,
            ),
            fingerprint,
        )
        for position, spec in enumerate(chunk.specs)
        for mpl in chunk.mpl_nominals
    ]


def _partition_chunker(cuts):
    """A chunker splitting at the (relative) cut points drawn for it."""

    def chunker(items):
        bounds = sorted({min(cut, len(items)) for cut in cuts} | {0, len(items)})
        return [
            list(items[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]

    return chunker


@st.composite
def schedules(draw):
    """(spec subset, partition cuts, interleaving, cached prefix)."""
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(SPEC_POOL) - 1),
            min_size=1, max_size=len(SPEC_POOL), unique=True,
        )
    )
    specs = [SPEC_POOL[i] for i in indices]
    cuts = draw(st.lists(
        st.integers(min_value=1, max_value=len(specs)), max_size=4,
    ))
    benchmarks = draw(
        st.sampled_from([["db"], ["jess"], ["db", "jess"]])
    )
    work = [(name, specs) for name in benchmarks]
    planned = plan_chunks(work, FINGERPRINTS, "prop", MPLS, _partition_chunker(cuts))
    order = draw(st.permutations(range(len(planned))))
    cached_prefix = draw(st.integers(min_value=0, max_value=len(planned)))
    return planned, order, cached_prefix


@settings(max_examples=40, deadline=None)
@given(schedules())
def test_any_interleaving_compacts_to_serial_bytes(tmp_path_factory, schedule):
    planned, order, cached_prefix = schedule
    tmp_path = tmp_path_factory.mktemp("chunkprop")
    serial = "".join(
        "".join(_chunk_lines(chunk)) for chunk in planned
    ).encode("utf-8")

    store = ChunkStore(tmp_path, "prop")
    cache = tmp_path / "sweep-prop.jsonl"
    # A resumed run: the first `cached_prefix` chunks were already folded
    # (their rows are cached, their files gc'd) before this run started.
    cache.write_bytes(
        "".join(
            "".join(_chunk_lines(chunk)) for chunk in planned[:cached_prefix]
        ).encode("utf-8")
    )
    for index in order:
        chunk = planned[index]
        if index < cached_prefix:
            continue  # already folded by the previous run
        store.write(
            chunk.key,
            benchmark=chunk.benchmark,
            fingerprint=chunk.fingerprint,
            configs=len(chunk.specs),
            lines=_chunk_lines(chunk),
        )

    summary = compact_chunks(store, planned, cache)
    assert summary["folded"] == len(planned) - cached_prefix
    assert summary["skipped"] == cached_prefix
    assert cache.read_bytes() == serial
