"""Property-based tests of the telemetry layer's invariants.

Three load-bearing properties:

- Histogram merging is associative and commutative — the guarantee that
  lets per-worker snapshots fold in any order or grouping.  Durations
  are drawn as dyadic rationals (``k * 2**-10``) so the ``total`` field
  sums bit-exactly regardless of addition order; bucket counts and
  min/max are exact for any values.
- A flight-record spool reloads bit-exactly: what :meth:`sample`
  returned in memory is what :func:`read_flight_record` hands back.
- A torn *final* flight-record line — any prefix of the last line, the
  crash-mid-write case — is tolerated and drops only that sample.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timeseries import FlightRecorder, read_flight_record

# Dyadic rational durations: k * 2**-10 for small k.  Dyadic sums are
# exact in binary floating point, so `total` is identical however the
# merge tree associates — which lets the tests compare snapshots with
# `==` instead of a tolerance.
dyadic_durations = st.integers(min_value=0, max_value=4096).map(
    lambda k: k * 2.0 ** -10
)
duration_lists = st.lists(dyadic_durations, min_size=0, max_size=40)


def histogram_of(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


def merged(*snapshots):
    result = Histogram()
    for snapshot in snapshots:
        result.merge_dict(snapshot)
    return result.to_dict()


@settings(max_examples=200, deadline=None)
@given(a=duration_lists, b=duration_lists, c=duration_lists)
def test_histogram_merge_is_associative(a, b, c):
    sa = histogram_of(a).to_dict()
    sb = histogram_of(b).to_dict()
    sc = histogram_of(c).to_dict()
    left = merged(merged(sa, sb), sc)
    right = merged(sa, merged(sb, sc))
    assert left == right


@settings(max_examples=200, deadline=None)
@given(a=duration_lists, b=duration_lists)
def test_histogram_merge_is_commutative(a, b):
    sa = histogram_of(a).to_dict()
    sb = histogram_of(b).to_dict()
    assert merged(sa, sb) == merged(sb, sa)


@settings(max_examples=200, deadline=None)
@given(values=duration_lists)
def test_histogram_merge_equals_single_pass(values):
    """Splitting observations across registries then merging loses
    nothing vs observing them all in one histogram."""
    one_pass = histogram_of(values).to_dict()
    split = merged(
        histogram_of(values[::2]).to_dict(),
        histogram_of(values[1::2]).to_dict(),
    )
    assert split == one_pass


counter_steps = st.lists(
    st.dictionaries(
        st.sampled_from(["events_in", "chunks", "parks"]),
        st.integers(min_value=0, max_value=1000),
        max_size=3,
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=100, deadline=None)
@given(steps=counter_steps)
def test_flight_record_spool_reloads_bit_exact(steps, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("flight")
    registry = MetricsRegistry()
    path = tmp_path / "flight.jsonl"
    recorder = FlightRecorder(registry, interval=1.0, spool_path=path)
    in_memory = []
    for step in steps:
        for name, amount in step.items():
            registry.counter(name).inc(amount)
        in_memory.append(recorder.sample())
    recorder.close(final_sample=False)
    header, reloaded = read_flight_record(path)
    assert header["flight_record"] == 1
    assert reloaded == json.loads(json.dumps(in_memory))
    # Summed deltas reproduce the final counters exactly.
    for name in ("events_in", "chunks", "parks"):
        expected = sum(step.get(name, 0) for step in steps)
        assert sum(s["deltas"].get(name, 0) for s in reloaded) == expected


@settings(max_examples=100, deadline=None)
@given(
    steps=counter_steps,
    torn_fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_torn_final_line_is_tolerated(steps, torn_fraction, tmp_path_factory):
    """Truncating the final line at ANY byte offset drops only that
    sample (or nothing, if the cut lands on the newline boundary)."""
    tmp_path = tmp_path_factory.mktemp("torn")
    registry = MetricsRegistry()
    path = tmp_path / "flight.jsonl"
    recorder = FlightRecorder(registry, interval=1.0, spool_path=path)
    for step in steps:
        for name, amount in step.items():
            registry.counter(name).inc(amount)
        recorder.sample()
    recorder.close(final_sample=False)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    final = lines[-1]
    torn = final[: int(len(final) * torn_fraction)]
    path.write_text("".join(lines[:-1]) + torn, encoding="utf-8")
    _, samples = read_flight_record(path)
    # Everything before the torn line survives; a cleanly-parsing torn
    # line (empty cut) just disappears.
    assert len(samples) in (len(steps) - 1, len(steps))
    assert [s["seq"] for s in samples] == list(range(1, len(samples) + 1))
