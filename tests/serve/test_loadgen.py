"""The seeded load generator and its offline verification."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve.loadgen import (
    LoadResult,
    SessionSpec,
    run_load,
    serve_bench,
    synthetic_session_specs,
    verify_sessions,
)
from repro.serve.server import PhaseServer


class TestSpecs:
    def test_synthetic_specs_deterministic(self):
        a = synthetic_session_specs(16, elements_per_session=800, seed=5)
        b = synthetic_session_specs(16, elements_per_session=800, seed=5)
        assert [s.sid for s in a] == [s.sid for s in b]
        assert [s.group for s in a] == [s.group for s in b]
        for left, right in zip(a, b):
            assert np.array_equal(left.elements, right.elements)

    def test_specs_cycle_sources_and_configs(self):
        specs = synthetic_session_specs(32, elements_per_session=600)
        groups = {s.group for s in specs}
        # 4 traces x 4 configs — and far fewer groups than sessions.
        assert len(groups) == 16
        assert all(len(s) == 600 for s in specs)


class TestRunLoad:
    def test_local_load_verifies(self):
        specs = synthetic_session_specs(12, elements_per_session=900)

        async def run():
            server = PhaseServer(sample_latency=True)
            result = await run_load(server, specs, chunk=150, verify=True)
            await server.drain()
            server.close()
            return result

        result = asyncio.run(run())
        assert isinstance(result, LoadResult)
        assert result.sessions == 12
        assert result.elements == 12 * 900
        assert result.verified is True
        assert result.mismatched == []
        assert result.events_per_sec > 0
        assert result.latency_p50_ms is not None

    def test_forced_eviction_still_verifies(self):
        specs = synthetic_session_specs(10, elements_per_session=900)

        async def run():
            server = PhaseServer(max_resident=2)
            result = await run_load(server, specs, chunk=200, verify=True)
            await server.drain()
            server.close()
            return result

        result = asyncio.run(run())
        assert result.parks > 0
        assert result.verified is True

    def test_verifier_catches_corruption(self):
        specs = synthetic_session_specs(4, elements_per_session=700)

        async def run():
            server = PhaseServer()
            result = await run_load(server, specs, chunk=200, verify=False)
            await server.drain()
            server.close()
            return result

        result = asyncio.run(run())
        # Corrupt one served stream; the verifier must name that sid.
        events = result.events_by_sid[specs[0].sid]
        if events:
            events.pop()
        else:
            events.append({"ev": "phase_enter", "step": 1})
        mismatched = verify_sessions(specs, result.events_by_sid)
        assert mismatched == [specs[0].sid]

    def test_rejects_bad_arguments(self):
        specs = synthetic_session_specs(2, elements_per_session=300)

        async def run_bad_transport():
            await run_load(PhaseServer(), specs, transport="carrier-pigeon")

        with pytest.raises(ValueError):
            asyncio.run(run_bad_transport())


class TestServeBench:
    def test_bench_row_shape(self):
        row = serve_bench(
            sessions=8,
            elements_per_session=600,
            chunk=150,
            source="synthetic",
            verify=True,
            park_sessions=4,
            park_max_resident=1,
        )
        main = row["main"]
        assert main["sessions"] == 8
        assert main["verified"] is True
        assert row["parked"]["verified"] is True
        assert row["parked"]["parks"] > 0
        assert row["manifest_sessions"] == 8

    def test_bench_flight_record_deltas_sum_to_events_in(self, tmp_path):
        from repro.obs.timeseries import read_flight_record

        spool = tmp_path / "flight.jsonl"
        row = serve_bench(
            sessions=6,
            elements_per_session=500,
            chunk=125,
            source="synthetic",
            verify=False,
            park_sessions=0,
            flight_record=spool,
            flight_interval=0.05,
        )
        assert row["flight_record"] == str(spool)
        header, samples = read_flight_record(spool)
        assert header["interval"] == 0.05
        delta_sum = sum(
            s["deltas"].get("serve.events_in", 0) for s in samples
        )
        # drain() appends a final sample, so the record accounts for
        # every element the load generator fed.
        assert delta_sum == 6 * 500

    def test_bench_tcp_transport(self):
        row = serve_bench(
            sessions=6,
            elements_per_session=500,
            chunk=120,
            source="synthetic",
            transport="tcp",
            connections=2,
            verify=True,
            park_sessions=0,
        )
        assert row["main"]["verified"] is True
        assert "parked" not in row
