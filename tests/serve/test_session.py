"""Session lifecycle and the park/rehydrate bit-identity guarantee."""

from __future__ import annotations

import json

import pytest

from repro.core.config import (
    AnalyzerKind,
    DetectorConfig,
    ModelKind,
    ResizePolicy,
    TrailingPolicy,
)
from repro.core.engine import run_detector
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import make_phased_trace
from repro.serve.protocol import ProtocolError
from repro.serve.session import (
    PHASE_EVENT_KINDS,
    Session,
    SessionError,
    SessionState,
)

#: The checkpoint matrix: model x analyzer x trailing, plus both
#: resize policies on the adaptive side.
MATRIX = {
    "unweighted-threshold-constant": DetectorConfig(cw_size=200, threshold=0.6),
    "weighted-threshold-constant": DetectorConfig(
        cw_size=200, model=ModelKind.WEIGHTED, threshold=0.6
    ),
    "unweighted-average-adaptive-slide": DetectorConfig(
        cw_size=200,
        analyzer=AnalyzerKind.AVERAGE,
        trailing=TrailingPolicy.ADAPTIVE,
        resize=ResizePolicy.SLIDE,
    ),
    "weighted-threshold-adaptive-move": DetectorConfig(
        cw_size=200,
        model=ModelKind.WEIGHTED,
        trailing=TrailingPolicy.ADAPTIVE,
        resize=ResizePolicy.MOVE,
        threshold=0.6,
    ),
    "weighted-average-adaptive-move": DetectorConfig(
        cw_size=200,
        model=ModelKind.WEIGHTED,
        analyzer=AnalyzerKind.AVERAGE,
        trailing=TrailingPolicy.ADAPTIVE,
        resize=ResizePolicy.MOVE,
    ),
    "skip-factor": DetectorConfig(cw_size=120, skip_factor=5, threshold=0.6),
}


@pytest.fixture(scope="module")
def trace():
    trace, _specs = make_phased_trace(
        num_phases=3, phase_length=1_200, transition_length=150, body_size=10,
        seed=23,
    )
    return trace


def offline_stream(trace, config, length):
    """The reference byte stream: offline run over the same elements."""
    sink = MemorySink()
    run_detector(trace[:length], config, observer=sink)
    return encode(
        [e for e in sink.events if e["ev"] in PHASE_EVENT_KINDS]
    )


def encode(events):
    return b"".join(
        json.dumps(e, separators=(",", ":")).encode() + b"\n" for e in events
    )


def make_session(tmp_path, config, buffer):
    return Session(
        "s1", config, tmp_path, on_event=lambda _sid, ev: buffer.append(ev)
    )


class TestLifecycle:
    def test_states_progress(self, tmp_path, trace):
        events = []
        session = make_session(tmp_path, MATRIX["unweighted-threshold-constant"],
                               events)
        assert session.state is SessionState.OPEN
        session.feed(trace.array[:500].tolist())
        assert session.state is SessionState.ACTIVE
        assert session.park()
        assert session.state is SessionState.PARKED
        assert not session.hydrated
        assert session.spool_path.exists()
        session.rehydrate()
        assert session.state is SessionState.REHYDRATED
        session.feed(trace.array[500:900].tolist())
        assert session.state is SessionState.ACTIVE
        summary = session.close()
        assert session.state is SessionState.CLOSED
        assert summary["elements"] == 900
        assert not session.spool_path.exists()

    def test_invalid_sid_rejected(self, tmp_path):
        with pytest.raises(ProtocolError):
            Session("../evil", MATRIX["unweighted-threshold-constant"],
                    tmp_path, on_event=lambda *_: None)

    def test_feed_after_close_raises(self, tmp_path, trace):
        session = make_session(
            tmp_path, MATRIX["unweighted-threshold-constant"], [])
        session.feed(trace.array[:300].tolist())
        session.close()
        with pytest.raises(SessionError):
            session.feed([1, 2, 3])
        with pytest.raises(SessionError):
            session.close()

    def test_park_is_noop_when_parked_or_closed(self, tmp_path, trace):
        session = make_session(
            tmp_path, MATRIX["unweighted-threshold-constant"], [])
        session.feed(trace.array[:300].tolist())
        assert session.park()
        assert not session.park()     # already parked
        session.close()
        assert not session.park()     # closed

    def test_kill_records_prekill_state(self, tmp_path, trace):
        session = make_session(
            tmp_path, MATRIX["unweighted-threshold-constant"], [])
        session.feed(trace.array[:400].tolist())
        session.park()
        session.kill()
        record = session.record()
        assert record["killed"] is True
        assert record["state"] == "closed"
        assert record["state_at_end"] == "parked"
        assert not session.spool_path.exists()
        session.kill()  # idempotent

    def test_record_counts(self, tmp_path, trace):
        events = []
        session = make_session(
            tmp_path, MATRIX["unweighted-threshold-constant"], events)
        session.feed(trace.array[:2000].tolist())
        session.park()
        session.feed(trace.array[2000:4000].tolist())
        session.close()
        record = session.record()
        assert record["events_in"] == 4000
        assert record["chunks_in"] == 2
        assert record["parks"] == 1
        assert record["rehydrations"] == 1
        assert record["events_out"] == len(events)
        assert record["phases"] == sum(
            1 for e in events if e["ev"] == "phase_exit")
        assert record["phases"] >= 1


class TestParkRehydrateIdentity:
    """Parked/rehydrated streams are byte-identical to uninterrupted runs."""

    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_single_park_identity(self, tmp_path, trace, label):
        config = MATRIX[label]
        length = 3_000
        events = []
        session = make_session(tmp_path, config, events)
        arr = trace.array[:length]
        session.feed(arr[:1_234].tolist())
        assert session.park()
        session.feed(arr[1_234:2_500].tolist())   # implicit rehydrate
        session.feed(arr[2_500:].tolist())
        session.close()
        assert encode(events) == offline_stream(trace, config, length)

    @pytest.mark.parametrize("label", ["weighted-average-adaptive-move",
                                       "skip-factor"])
    def test_every_chunk_boundary_parks(self, tmp_path, trace, label):
        # Park between *every* chunk, with chunk sizes that tear steps.
        config = MATRIX[label]
        length = 2_400
        events = []
        session = make_session(tmp_path, config, events)
        arr = trace.array[:length]
        position = 0
        for size in (7, 333, 98, 1_001, 500, 461):
            session.feed(arr[position : position + size].tolist())
            position += size
            session.park()
        session.feed(arr[position:].tolist())
        session.close()
        assert encode(events) == offline_stream(trace, config, length)

    def test_park_close_identity(self, tmp_path, trace):
        # Closing a parked session still flushes the final phase.
        config = MATRIX["unweighted-threshold-constant"]
        length = 2_000
        events = []
        session = make_session(tmp_path, config, events)
        session.feed(trace.array[:length].tolist())
        session.park()
        session.close()
        assert encode(events) == offline_stream(trace, config, length)

    def test_spool_file_is_valid_checkpoint_json(self, tmp_path, trace):
        session = make_session(
            tmp_path, MATRIX["unweighted-threshold-constant"], [])
        session.feed(trace.array[:1_000].tolist())
        session.park()
        data = json.loads(session.spool_path.read_text())
        assert data["format"] == "repro-detector-checkpoint"
        assert data["version"] == 1
        assert "stream" in data
