"""Serve-side live telemetry: stats/healthz verbs, histograms, the
flight recorder, and session-lifecycle spans."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import DetectorConfig
from repro.obs.timeseries import read_flight_record
from repro.obs.trace import Tracer
from repro.serve.client import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import PhaseServer

CONFIG = DetectorConfig(cw_size=100, threshold=0.6)


async def feed_sessions(client, sids, chunks=4, chunk_len=150):
    for sid in sids:
        await client.open(sid, CONFIG)
    for _ in range(chunks):
        for sid in sids:
            await client.send(sid, list(range(chunk_len)))
    return chunks * chunk_len


class TestStatsVerb:
    def test_stats_reply_shape_and_census(self):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            fed = await feed_sessions(client, ["t1", "t2"])
            await client.close_session("t1")
            stats = await client.stats()
            await client.aclose()
            await server.drain()
            server.close()
            return stats, fed

        stats, fed = asyncio.run(run())
        assert stats["op"] == "stats"
        assert stats["protocol"] == PROTOCOL_VERSION
        assert stats["uptime"] > 0
        assert stats["sessions"] == {"open": 1, "resident": 1, "parked": 0}
        metrics = stats["metrics"]
        assert metrics["counters"]["serve.events_in"] == 2 * fed
        assert metrics["counters"]["serve.sessions_opened"] == 2
        # feed latency is a histogram snapshot: percentiles derivable.
        feed_hist = metrics["histograms"]["serve.feed_seconds"]
        assert feed_hist["count"] == 8
        assert sum(feed_hist["buckets"].values()) == 8
        # The runtime histogram rode through the session pass-through.
        assert metrics["histograms"]["runtime.advance_seconds"]["count"] > 0

    def test_stats_includes_flight_tail_when_recording(self):
        async def run():
            server = PhaseServer(flight_interval=0.02)
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await feed_sessions(client, ["f1"])
            await asyncio.sleep(0.08)
            stats = await client.stats()
            await client.aclose()
            await server.drain()
            server.close()
            return stats

        stats = asyncio.run(run())
        flight = stats["flight"]
        assert len(flight) >= 2
        assert [s["seq"] for s in flight] == sorted(s["seq"] for s in flight)
        assert "deltas" in flight[0] and "snapshot" in flight[0]

    def test_stats_without_recorder_has_empty_flight(self):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            stats = await client.stats()
            await client.aclose()
            await server.drain()
            server.close()
            return stats

        assert asyncio.run(run())["flight"] == []


class TestHealthzVerb:
    def test_healthz_ok_and_census(self):
        async def run():
            server = PhaseServer(max_resident=1)
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await feed_sessions(client, ["h1", "h2"])  # h1 parks (LRU)
            healthz = await client.healthz()
            await client.aclose()
            await server.drain()
            server.close()
            return healthz

        healthz = asyncio.run(run())
        assert healthz["op"] == "healthz"
        assert healthz["status"] == "ok"
        assert healthz["draining"] is False
        assert healthz["sessions"] == 2
        assert healthz["resident"] == 1
        assert healthz["parked"] == 1

    def test_healthz_reports_draining(self):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            server._draining = True
            payload = server.healthz_payload()
            server._draining = False
            await server.drain()
            server.close()
            return payload

        payload = asyncio.run(run())
        assert payload["status"] == "draining"
        assert payload["draining"] is True


class TestFlightRecorder:
    def test_spool_delta_sum_matches_events_in(self, tmp_path):
        spool = tmp_path / "flight.jsonl"

        async def run():
            server = PhaseServer(flight_record=spool, flight_interval=0.02)
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            fed = await feed_sessions(client, ["d1", "d2"], chunks=6)
            await asyncio.sleep(0.06)
            await client.aclose()
            await server.drain()
            events_in = server.metrics.counter("serve.events_in").value
            server.close()
            return fed, events_in

        fed, events_in = asyncio.run(run())
        assert events_in == 2 * fed
        header, samples = read_flight_record(spool)
        assert header["interval"] == 0.02
        delta_sum = sum(
            s["deltas"].get("serve.events_in", 0) for s in samples
        )
        # drain() takes a final sample, so the record is complete.
        assert delta_sum == events_in

    def test_manifest_points_at_flight_record(self, tmp_path):
        spool = tmp_path / "flight.jsonl"

        async def run():
            server = PhaseServer(flight_record=spool)
            await server.start(port=0)
            manifest = await server.drain()
            server.close()
            return manifest

        manifest = asyncio.run(run())
        assert manifest["flight_record"] == str(spool)


class TestServeSpans:
    def test_session_lifecycle_spans(self):
        tracer = Tracer()

        async def run():
            server = PhaseServer(max_resident=1, tracer=tracer)
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await feed_sessions(client, ["s1", "s2"])  # s1 parks, rehydrates
            await client.send("s1", list(range(100)))  # forces rehydrate
            await client.close_session("s1")
            await client.close_session("s2")
            await client.aclose()
            await server.drain()
            server.close()

        asyncio.run(run())
        names = {span.name for span in tracer.spans}
        assert {"serve.open", "serve.feed", "serve.park",
                "serve.rehydrate", "serve.close"} <= names
        feed_spans = [s for s in tracer.spans if s.name == "serve.feed"]
        assert all(s.attrs.get("sid") in ("s1", "s2") for s in feed_spans)
        rehydrate = [s for s in tracer.spans if s.name == "serve.rehydrate"]
        assert any(s.attrs.get("sid") == "s1" for s in rehydrate)

    def test_no_tracer_means_no_spans_and_same_results(self):
        async def run():
            server = PhaseServer()
            assert server.tracer is None
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await feed_sessions(client, ["z1"])
            summary = await client.close_session("z1")
            await client.aclose()
            await server.drain()
            server.close()
            return summary

        assert asyncio.run(run())["elements"] == 600


class TestV1Compatibility:
    def test_v1_message_set_still_works(self):
        """A client speaking only the v1 verbs interoperates unchanged."""
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.ping()
            await client.open("v1", CONFIG)
            await client.send("v1", list(range(300)))
            summary = await client.close_session("v1")
            await client.aclose()
            await server.drain()
            server.close()
            return summary

        assert asyncio.run(run())["elements"] == 300
