"""The wire: ServeClient against a live PhaseServer over localhost TCP."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import DetectorConfig
from repro.core.engine import run_detector
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import make_phased_trace
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import PhaseServer
from repro.serve.session import PHASE_EVENT_KINDS

CONFIG = DetectorConfig(cw_size=200, threshold=0.6)


@pytest.fixture(scope="module")
def trace():
    trace, _specs = make_phased_trace(
        num_phases=2, phase_length=1_000, transition_length=150, body_size=9,
        seed=77,
    )
    return trace


def encode(events):
    return b"".join(
        json.dumps(e, separators=(",", ":")).encode() + b"\n" for e in events
    )


def offline_stream(trace, config, length):
    sink = MemorySink()
    run_detector(trace[:length], config, observer=sink)
    return encode([e for e in sink.events if e["ev"] in PHASE_EVENT_KINDS])


class TestWire:
    def test_multiplexed_round_trip(self, trace):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.ping()
            length = 1_800
            elements = trace.array[:length].tolist()
            sids = [f"wire{i}" for i in range(5)]
            for sid in sids:
                await client.open(sid, CONFIG)
            # Interleave chunks across the sessions on one socket.
            for start in range(0, length, 200):
                for sid in sids:
                    await client.send(sid, elements[start : start + 200])
            summaries = {}
            for sid in sids:
                summaries[sid] = await client.close_session(sid)
            streams = {sid: client.events_for(sid) for sid in sids}
            await client.aclose()
            await server.drain()
            server.close()
            return summaries, streams

        summaries, streams = asyncio.run(run())
        reference = offline_stream(trace, CONFIG, 1_800)
        for sid, events in streams.items():
            assert encode(events) == reference
            assert summaries[sid]["elements"] == 1_800

    def test_protocol_errors_reported(self):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            # Unknown session: polite error, connection stays up.
            writer.write(protocol.encode_message(
                {"op": "events", "sid": "ghost", "elements": [1]}))
            await writer.drain()
            first = protocol.decode_message(await reader.readline())
            # Malformed line: error, then the server closes the wire.
            writer.write(b"this is not json\n")
            await writer.drain()
            second = protocol.decode_message(await reader.readline())
            tail = await reader.read()
            writer.close()
            await writer.wait_closed()
            await server.drain()
            server.close()
            return first, second, tail

        first, second, tail = asyncio.run(run())
        assert first["op"] == "error"
        assert "ghost" in first["error"]
        assert second["op"] == "error"
        assert tail == b""  # server hung up after the malformed line

    def test_client_open_error_raises(self):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.open("dup", CONFIG)
            with pytest.raises(ServeError):
                await client.open("dup", CONFIG)
            await client.close_session("dup")
            await client.aclose()
            await server.drain()
            server.close()

        asyncio.run(run())

    def test_dropped_connection_kills_sessions(self, trace):
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.open("doomed", CONFIG)
            await client.send("doomed", trace.array[:600].tolist())
            await asyncio.sleep(0.05)  # let the server consume the chunk
            await client.aclose()      # vanish without closing the session
            await asyncio.sleep(0.05)
            manifest = await server.drain()
            server.close()
            return manifest

        manifest = asyncio.run(run())
        (record,) = manifest["sessions"]
        assert record["sid"] == "doomed"
        assert record["killed"] is True
        assert record["events_in"] == 600

    def test_foreign_sid_rejected(self, trace):
        # A connection may only feed sessions it opened.
        async def run():
            server = PhaseServer()
            await server.start(port=0)
            owner = await ServeClient.connect("127.0.0.1", server.port)
            intruder = await ServeClient.connect("127.0.0.1", server.port)
            await owner.open("mine", CONFIG)
            with pytest.raises(ServeError):
                await intruder.close_session("mine")
            await owner.close_session("mine")
            await owner.aclose()
            await intruder.aclose()
            await server.drain()
            server.close()

        asyncio.run(run())
