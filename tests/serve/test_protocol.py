"""Wire protocol: framing, validation, and the sid security boundary."""

from __future__ import annotations

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_ELEMENTS_PER_MESSAGE,
    ProtocolError,
    decode_message,
    encode_message,
    validate_client_message,
    validate_sid,
)


class TestSidValidation:
    @pytest.mark.parametrize(
        "sid", ["s1", "a", "A-b_c.9", "x" * 64, "9lives"]
    )
    def test_accepts_safe_ids(self, sid):
        assert validate_sid(sid) == sid

    @pytest.mark.parametrize(
        "sid",
        [
            "",                    # empty
            ".hidden",             # leading dot
            "../escape",           # path traversal
            "a/b",                 # separator
            "a b",                 # whitespace
            "x" * 65,              # too long
            "café",           # non-ASCII
            42,                    # not a string
            None,
        ],
    )
    def test_rejects_unsafe_ids(self, sid):
        with pytest.raises(ProtocolError):
            validate_sid(sid)

    def test_sid_never_escapes_spool_dir(self, tmp_path):
        # The property the regex exists for: a validated sid joined to
        # the spool dir stays inside the spool dir.
        sid = validate_sid("ok-1.ckpt")
        assert (tmp_path / sid).resolve().parent == tmp_path.resolve()


class TestFraming:
    def test_round_trip(self):
        message = {"op": "events", "sid": "s", "elements": [1, 2, 3]}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert b" " not in line  # compact separators
        assert decode_message(line) == message

    def test_decode_accepts_str(self):
        assert decode_message('{"op":"ping"}') == {"op": "ping"}

    @pytest.mark.parametrize(
        "line", [b"not json\n", b'"a string"\n', b"[1,2]\n", b"\xff\xfe\n"]
    )
    def test_decode_rejects_garbage(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_decode_rejects_oversized_line(self):
        line = b'{"op":"ping","pad":"' + b"x" * protocol.MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError):
            decode_message(line)


class TestClientMessageValidation:
    def test_each_op_validates(self):
        assert validate_client_message(
            {"op": "open", "sid": "s", "config": {"cw_size": 100}}
        ) == "open"
        assert validate_client_message(
            {"op": "events", "sid": "s", "elements": [1]}
        ) == "events"
        assert validate_client_message({"op": "close", "sid": "s"}) == "close"
        assert validate_client_message({"op": "ping"}) == "ping"

    @pytest.mark.parametrize(
        "message",
        [
            {"op": "nope"},
            {"op": "open", "sid": "s"},                      # missing config
            {"op": "open", "sid": "s", "config": []},        # non-dict config
            {"op": "events", "sid": "s"},                    # missing elements
            {"op": "events", "sid": "s", "elements": "abc"},
            {"op": "events", "sid": "s", "elements": [1.5]},
            {"op": "events", "sid": "s", "elements": [True]},
            {"op": "events", "sid": "../x", "elements": [1]},
            {"op": "close"},
        ],
    )
    def test_rejects_malformed(self, message):
        with pytest.raises(ProtocolError):
            validate_client_message(message)

    def test_rejects_oversized_batch(self):
        message = {
            "op": "events",
            "sid": "s",
            "elements": [0] * (MAX_ELEMENTS_PER_MESSAGE + 1),
        }
        with pytest.raises(ProtocolError):
            validate_client_message(message)

    def test_server_builders_round_trip(self):
        for built in (
            protocol.opened_message("s"),
            protocol.event_message("s", {"ev": "phase_enter", "step": 1}),
            protocol.closed_message("s", 10, 2),
            protocol.error_message(None, "boom"),
        ):
            assert decode_message(encode_message(built)) == built
