"""PhaseServer: multiplexing, backpressure, eviction, drain, manifests."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import DetectorConfig, ModelKind, TrailingPolicy
from repro.core.engine import run_detector
from repro.obs.bus import MemorySink
from repro.profiles.synthetic import make_phased_trace
from repro.serve.server import PhaseServer
from repro.serve.session import PHASE_EVENT_KINDS, SessionError, SessionState

CONFIG = DetectorConfig(cw_size=200, threshold=0.6)
CONFIG_B = DetectorConfig(
    cw_size=200, model=ModelKind.WEIGHTED,
    trailing=TrailingPolicy.ADAPTIVE, threshold=0.6,
)


@pytest.fixture(scope="module")
def trace():
    trace, _specs = make_phased_trace(
        num_phases=3, phase_length=1_000, transition_length=150, body_size=9,
        seed=31,
    )
    return trace


def encode(events):
    return b"".join(
        json.dumps(e, separators=(",", ":")).encode() + b"\n" for e in events
    )


def offline_stream(trace, config, length):
    sink = MemorySink()
    run_detector(trace[:length], config, observer=sink)
    return encode([e for e in sink.events if e["ev"] in PHASE_EVENT_KINDS])


async def stream_session(server, sid, config, elements, chunk=300, buffer=None):
    buffer = [] if buffer is None else buffer
    await server.open_session(
        sid, config, on_event=lambda _sid, ev, _b=buffer: _b.append(ev))
    for start in range(0, len(elements), chunk):
        await server.feed(sid, elements[start : start + chunk])
    summary = await server.close_session(sid)
    return buffer, summary


class TestServing:
    def test_many_sessions_match_offline(self, trace):
        async def run():
            server = PhaseServer(max_resident=64)
            try:
                length = 2_500
                elements = trace.array[:length].tolist()
                buffers = {}
                tasks = []
                for index in range(24):
                    sid = f"s{index:02d}"
                    config = CONFIG if index % 2 == 0 else CONFIG_B
                    buffers[sid] = (config, [])
                    tasks.append(stream_session(
                        server, sid, config, elements,
                        chunk=101 + 13 * index, buffer=buffers[sid][1]))
                await asyncio.gather(*tasks)
                await server.drain()
            finally:
                server.close()
            for config, events in buffers.values():
                assert encode(events) == offline_stream(trace, config, length)

        asyncio.run(run())

    def test_eviction_mid_trace_is_invisible(self, trace, tmp_path):
        async def run():
            # Two resident slots, eight sessions: constant parking churn.
            server = PhaseServer(spool_dir=tmp_path, max_resident=2)
            length = 2_000
            elements = trace.array[:length].tolist()
            buffers = {f"s{i}": [] for i in range(8)}
            tasks = [
                stream_session(server, sid, CONFIG, elements, chunk=257,
                               buffer=buffer)
                for sid, buffer in buffers.items()
            ]
            await asyncio.gather(*tasks)
            parked = server.metrics.counter("serve.sessions_parked").value
            manifest = await server.drain()
            server.close()
            return buffers, parked, manifest

        buffers, parked, manifest = asyncio.run(run())
        assert parked > 0, "max_resident=2 with 8 sessions must park"
        reference = offline_stream(trace, CONFIG, 2_000)
        for events in buffers.values():
            assert encode(events) == reference
        assert all(r["state"] == "closed" for r in manifest["sessions"])

    def test_backpressure_blocks_producer_without_loss(self, trace):
        async def run():
            server = PhaseServer(max_resident=8, queue_size=2)
            served = []
            slow = asyncio.Event()

            async def flush():
                # A slow consumer: every chunk takes a while to flush.
                await asyncio.sleep(0.002)
                slow.set()

            sid = "slow1"
            await server.open_session(
                sid, CONFIG,
                on_event=lambda _sid, ev: served.append(ev), flush=flush)
            elements = trace.array[:2_200].tolist()
            fed = 0
            for start in range(0, len(elements), 100):
                await server.feed(sid, elements[start : start + 100])
                fed += 1
            # The producer completed every put even though the consumer
            # lags; the queue bound just made the puts block.
            assert fed == 22
            await server.close_session(sid)
            await server.drain()
            server.close()
            assert slow.is_set()
            return served

        served = asyncio.run(run())
        # No drops, no reorders: byte-identical to the offline run.
        assert encode(served) == offline_stream(trace, CONFIG, 2_200)

    def test_queue_bound_enforced(self, trace):
        async def run():
            server = PhaseServer(queue_size=3)
            blocked = asyncio.Event()
            release = asyncio.Event()

            async def flush():
                blocked.set()
                await release.wait()

            await server.open_session("s", CONFIG, flush=flush)
            lane_queue = server._lanes["s"].queue

            async def producer():
                for _ in range(10):
                    await server.feed("s", [1, 2, 3])

            task = asyncio.ensure_future(producer())
            await blocked.wait()
            await asyncio.sleep(0.01)
            # The worker is stuck in flush; the queue can hold at most
            # its bound while the producer waits on put().
            assert lane_queue.qsize() <= 3
            assert not task.done()
            release.set()
            await task
            await server.close_session("s")
            await server.drain()
            server.close()

        asyncio.run(run())


class TestLifecycleManagement:
    def test_duplicate_and_unknown_sids(self):
        async def run():
            server = PhaseServer()
            await server.open_session("dup", CONFIG)
            with pytest.raises(SessionError):
                await server.open_session("dup", CONFIG)
            with pytest.raises(SessionError):
                await server.feed("ghost", [1])
            with pytest.raises(SessionError):
                await server.close_session("ghost")
            await server.close_session("dup")
            await server.drain()
            server.close()

        asyncio.run(run())

    def test_killed_session_manifest_records_final_state(self, trace):
        async def run():
            server = PhaseServer()
            await server.open_session("victim", CONFIG)
            await server.feed("victim", trace.array[:600].tolist())
            await asyncio.sleep(0.05)  # let the worker consume
            server.kill_session("victim")
            manifest = await server.drain()
            server.close()
            return manifest

        manifest = asyncio.run(run())
        (record,) = manifest["sessions"]
        assert record["sid"] == "victim"
        assert record["killed"] is True
        assert record["state"] == "closed"
        assert record["state_at_end"] == "active"
        assert record["events_in"] == 600
        assert manifest["metrics"]["counters"]["serve.sessions_killed"] == 1

    def test_failed_session_reports_and_recovers(self, trace):
        async def run():
            server = PhaseServer()
            # Force a worker failure: drop the detector with no spool
            # file behind it, so the rehydrate on next feed blows up.
            await server.open_session("bad", CONFIG)
            server._lanes["bad"].session._detector = None
            await server.feed("bad", [1, 2, 3])
            await asyncio.sleep(0.05)
            with pytest.raises(SessionError):
                await server.feed("bad", [1, 2, 3])
            # The server still serves other sessions.
            buffer, summary = await stream_session(
                server, "good", CONFIG, trace.array[:1_000].tolist())
            manifest = await server.drain()
            server.close()
            return summary, manifest

        summary, manifest = asyncio.run(run())
        assert summary["elements"] == 1_000
        states = {r["sid"]: r for r in manifest["sessions"]}
        assert states["bad"]["killed"] is True
        assert states["good"]["state"] == "closed"
        assert manifest["metrics"]["counters"]["serve.sessions_failed"] == 1

    def test_idle_sessions_park(self, trace):
        async def run():
            server = PhaseServer(idle_timeout=0.03, idle_poll=0.01)
            await server.open_session("idler", CONFIG)
            await server.feed("idler", trace.array[:500].tolist())
            await asyncio.sleep(0.15)
            assert server.resident_count == 0
            session = server._lanes["idler"].session
            assert session.state is SessionState.PARKED
            # The next feed rehydrates transparently.
            await server.feed("idler", trace.array[500:1_000].tolist())
            summary = await server.close_session("idler")
            await server.drain()
            server.close()
            return summary

        summary = asyncio.run(run())
        assert summary["elements"] == 1_000

    def test_drain_parks_open_sessions_and_refuses_new(self, trace):
        async def run():
            server = PhaseServer()
            buffer = []
            await server.open_session(
                "open1", CONFIG,
                on_event=lambda _sid, ev: buffer.append(ev))
            await server.feed("open1", trace.array[:700].tolist())
            manifest = await server.drain()
            with pytest.raises(SessionError):
                await server.open_session("late", CONFIG)
            spool = server.spool_dir / "open1.ckpt.json"
            spooled = spool.exists()
            manifest_file = server.spool_dir / "serve.manifest.json"
            on_disk = json.loads(manifest_file.read_text())
            server.close()
            return manifest, spooled, on_disk

        manifest, spooled, on_disk = asyncio.run(run())
        (record,) = manifest["sessions"]
        assert record["state"] == "parked"
        assert record["killed"] is False
        assert spooled, "drain must park the still-open session to spool"
        assert on_disk["kind"] == "serve-run"
        assert on_disk["sessions"] == manifest["sessions"]
