"""End-to-end integration tests across the whole pipeline.

MiniLang source → compiled program → instrumented run → branch +
call-loop traces → oracle → detectors (reference, engine, comparators)
→ scores, at a small scale so the whole chain stays fast.
"""

import numpy as np
import pytest

from repro.baseline import solve_baseline
from repro.core import DetectorConfig, PhaseDetector, TrailingPolicy
from repro.core.engine import run_detector
from repro.scoring import score_states
from repro.vm.compiler import compile_source
from repro.vm.interpreter import run_program
from repro.workloads import ALL_WORKLOADS, load_traces

SCALE = 0.12


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    cache = tmp_path_factory.mktemp("integration")
    return {
        wl.name: load_traces(wl.name, scale=SCALE, cache_dir=cache)
        for wl in ALL_WORKLOADS
    }


class TestEngineOnRealTraces:
    @pytest.mark.parametrize("name", [wl.name for wl in ALL_WORKLOADS])
    def test_engine_matches_reference(self, suite, name):
        branch_trace, _ = suite[name]
        config = DetectorConfig(
            cw_size=40, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )
        reference = PhaseDetector(config).run(branch_trace)
        engine = run_detector(branch_trace, config)
        assert np.array_equal(reference.states, engine.states), name
        assert reference.detected_phases == engine.detected_phases, name


class TestDetectionQualityFloor:
    """A reasonable detector must beat trivial baselines on every benchmark."""

    @pytest.mark.parametrize("name", [wl.name for wl in ALL_WORKLOADS])
    def test_beats_trivial_detectors(self, suite, name):
        branch_trace, call_loop = suite[name]
        oracle_states = solve_baseline(call_loop, mpl=60).states()
        config = DetectorConfig(
            cw_size=30, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )
        detected = run_detector(branch_trace, config)
        score = score_states(detected.states, oracle_states).score
        all_t = score_states(
            np.zeros_like(oracle_states), oracle_states
        ).score
        assert score > 0.4, name
        # The trivial all-transition detector is only competitive when
        # the oracle finds almost nothing in phase.
        if oracle_states.mean() > 0.4:
            assert score > all_t, name


class TestWorkloadOptimizerEquivalence:
    """The VM optimizer must preserve every workload's result."""

    @pytest.mark.parametrize("wl", ALL_WORKLOADS, ids=lambda wl: wl.name)
    def test_optimized_result_identical(self, wl):
        source = wl.program_source(SCALE)
        plain = run_program(compile_source(source), seed=wl.seed)
        optimized = run_program(compile_source(source, optimize=True), seed=wl.seed)
        assert plain == optimized


class TestOracleDetectorAgreementOnCleanPhases:
    def test_compress_blocks_found_online(self, suite):
        """compress's per-block loops are the cleanest phases in the
        suite: a tuned detector should match most of their boundaries."""
        branch_trace, call_loop = suite["compress"]
        oracle = solve_baseline(call_loop, mpl=200)
        config = DetectorConfig(
            cw_size=100, trailing=TrailingPolicy.ADAPTIVE, threshold=0.6
        )
        result = run_detector(branch_trace, config)
        score = score_states(result.states, oracle.states())
        assert score.sensitivity >= 0.5
        corrected = score_states(
            result.corrected_states(),
            oracle.states(),
            detected_phases=result.corrected_phases(),
        )
        assert corrected.correlation >= score.correlation
