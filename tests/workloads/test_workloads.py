"""Workload suite tests.

Uses a very small scale so every workload compiles and runs quickly;
one session-scoped fixture shares the executed traces across tests.
"""

import pytest

from repro.baseline import solve_baseline
from repro.profiles.callloop import EventKind
from repro.workloads import (
    ALL_WORKLOADS,
    BenchmarkCharacteristics,
    load_suite,
    load_traces,
    workload,
    workload_names,
)

SCALE = 0.12


@pytest.fixture(scope="session")
def tiny_suite(tmp_path_factory):
    cache = tmp_path_factory.mktemp("traces")
    return load_suite(scale=SCALE, cache_dir=cache)


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(ALL_WORKLOADS) == 8
        assert workload_names() == [
            "compress", "jess", "raytrace", "db", "javac", "mpegaudio", "jack", "jlex",
        ]

    def test_lookup(self):
        assert workload("jess").name == "jess"
        with pytest.raises(KeyError):
            workload("nope")

    def test_fingerprint_changes_with_scale(self):
        wl = workload("compress")
        assert wl.fingerprint(1.0) != wl.fingerprint(0.5)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            workload("compress").program_source(0)


class TestExecution:
    def test_all_workloads_run(self, tiny_suite):
        assert set(tiny_suite) == set(workload_names())
        for name, (branch, call_loop) in tiny_suite.items():
            assert len(branch) > 500, name
            assert call_loop.num_branches == len(branch), name

    def test_events_well_nested(self, tiny_suite):
        for name, (_, call_loop) in tiny_suite.items():
            depth = 0
            for event in call_loop:
                if event.kind in (EventKind.METHOD_ENTRY, EventKind.LOOP_ENTRY):
                    depth += 1
                else:
                    depth -= 1
                assert depth >= 0, name
            assert depth == 0, name

    def test_deterministic(self, tmp_path):
        first_branch, first_loop = workload("db").run(SCALE)
        second_branch, second_loop = workload("db").run(SCALE)
        assert first_branch == second_branch
        assert list(first_loop) == list(second_loop)

    def test_recursive_benchmarks_have_roots(self, tiny_suite):
        for name in ("raytrace", "javac", "jack", "jess"):
            _, call_loop = tiny_suite[name]
            assert call_loop.recursion_roots() > 0, name

    def test_loop_benchmarks_have_no_roots(self, tiny_suite):
        for name in ("compress", "db", "mpegaudio", "jlex"):
            _, call_loop = tiny_suite[name]
            assert call_loop.recursion_roots() == 0, name


class TestCharacteristics:
    def test_table_row(self, tiny_suite):
        branch, call_loop = tiny_suite["compress"]
        row = BenchmarkCharacteristics.of(branch, call_loop)
        assert row.name == "compress"
        assert row.dynamic_branches == len(branch)
        assert row.loop_executions == call_loop.loop_executions()


class TestOracleShapes:
    def test_phase_counts_decrease_with_mpl(self, tiny_suite):
        for name, (_, call_loop) in tiny_suite.items():
            counts = [
                solve_baseline(call_loop, mpl).num_phases
                for mpl in (10, 50, 200, 1_000)
            ]
            assert counts == sorted(counts, reverse=True), (name, counts)

    def test_compress_high_coverage(self, tiny_suite):
        _, call_loop = tiny_suite["compress"]
        solution = solve_baseline(call_loop, mpl=20)
        assert solution.percent_in_phase > 90.0


class TestCaching:
    def test_cache_round_trip(self, tmp_path):
        first = load_traces("db", scale=SCALE, cache_dir=tmp_path)
        suffixes = sorted(p.suffix for p in tmp_path.iterdir())
        assert suffixes == [".bcodes", ".btrace", ".cloop"]
        second = load_traces("db", scale=SCALE, cache_dir=tmp_path)
        assert first[0] == second[0]
        assert list(first[1]) == list(second[1])

    def test_corrupt_cached_trace_regenerated(self, tmp_path):
        first = load_traces("db", scale=SCALE, cache_dir=tmp_path)
        btrace = next(tmp_path.glob("db-*.btrace"))
        # Corrupt the declared-length field the way the seed cache was:
        # keep the magic/name intact, declare an absurd payload size.
        data = bytearray(btrace.read_bytes())
        name_len = int.from_bytes(data[8:12], "little")
        offset = 12 + name_len
        data[offset : offset + 8] = (0x0C00_0000_0000_0001).to_bytes(8, "little")
        btrace.write_bytes(bytes(data))
        healed = load_traces("db", scale=SCALE, cache_dir=tmp_path)
        assert healed[0] == first[0]
        # The bad file was overwritten with a valid one.
        assert load_traces("db", scale=SCALE, cache_dir=tmp_path)[0] == first[0]


class TestScaling:
    @pytest.mark.parametrize("name", ["compress", "jess", "mpegaudio"])
    def test_trace_length_grows_with_scale(self, name):
        # Use scales above the knobs' minimum floors.
        small_branch, _ = workload(name).run(0.25)
        large_branch, _ = workload(name).run(0.75)
        assert len(large_branch) > len(small_branch) * 1.5

    def test_scale_changes_source(self):
        wl = workload("db")
        assert wl.program_source(0.1) != wl.program_source(0.5)

    def test_all_sources_compile_at_tiny_scale(self):
        from repro.vm.compiler import compile_source

        for wl in ALL_WORKLOADS:
            program = compile_source(wl.program_source(0.05), name=wl.name)
            assert program.num_instructions() > 20, wl.name


class TestAssemblerRoundTrip:
    """compile -> disassemble -> re-assemble -> identical behavior."""

    @pytest.mark.parametrize("name", [
        "compress", "jess", "raytrace", "db", "javac", "mpegaudio", "jack", "jlex",
    ])
    def test_disassembly_round_trip(self, name):
        from repro.vm.assembler import assemble, disassemble
        from repro.vm.compiler import compile_source
        from repro.vm.interpreter import run_program
        from repro.vm.tracing import CollectingSink

        wl = workload(name)
        program = compile_source(wl.program_source(0.05), name=name)
        rebuilt = assemble(disassemble(program), name=name)

        original_sink = CollectingSink()
        rebuilt_sink = CollectingSink()
        original = run_program(program, sink=original_sink, seed=wl.seed)
        again = run_program(rebuilt, sink=rebuilt_sink, seed=wl.seed)
        assert original == again
        assert original_sink.elements == rebuilt_sink.elements
        assert original_sink.events == rebuilt_sink.events
